"""Reusable experiment drivers behind the per-figure entry points.

Each driver mirrors the paper's §12 "Method" paragraphs: pairs of
devices at random testbed locations, a one-time free-space calibration
per device pair (§7 observation 2), repeated CSI sweeps, and the
estimator under test.  Figures call these with their own parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import BatchTofEngine
from repro.core.cfo import LinkCalibration
from repro.core.localization import locate_transmitter
from repro.core.pipeline import ChronosDevice, ChronosPair, triangle_array
from repro.core.tof import TofEstimate, TofEstimator, TofEstimatorConfig
from repro.experiments.testbed import Testbed, office_testbed
from repro.rf.constants import SPEED_OF_LIGHT
from repro.rf.environment import free_space
from repro.rf.geometry import Point
from repro.wifi.hardware import INTEL_5300, HardwareProfile
from repro.wifi.radio import SimulatedLink


@dataclass
class TofSample:
    """One ToF measurement outcome on the testbed."""

    true_tof_s: float
    estimated_tof_s: float
    distance_m: float
    line_of_sight: bool
    estimate: TofEstimate

    @property
    def error_s(self) -> float:
        """Signed ToF error."""
        return self.estimated_tof_s - self.true_tof_s

    @property
    def abs_error_s(self) -> float:
        """Absolute ToF error (the Fig. 7a statistic)."""
        return abs(self.error_s)

    @property
    def abs_error_m(self) -> float:
        """Absolute error as a distance."""
        return self.abs_error_s * SPEED_OF_LIGHT


def calibrate_pair(
    tx_state,
    rx_state,
    estimator_config: TofEstimatorConfig,
    rng: np.random.Generator,
    reference_distance_m: float = 1.0,
    n_sweeps: int = 2,
    n_packets_per_band: int = 3,
) -> LinkCalibration:
    """§7's one-time known-distance calibration for a device pair."""
    link = SimulatedLink(
        environment=free_space(),
        tx_position=Point(0.0, 0.0),
        rx_position=Point(reference_distance_m, 0.0),
        tx_state=tx_state,
        rx_state=rx_state,
        rng=rng,
    )
    estimator = TofEstimator(estimator_config)
    sweeps = [link.sweep(n_packets_per_band) for _ in range(n_sweeps)]
    estimate = estimator.estimate_many(sweeps)
    return LinkCalibration.fit(
        estimate.raw_tof_s, link.true_tof_s, estimate.coarse_round_trip_s
    )


def run_tof_experiment(
    n_pairs: int,
    seed: int = 11,
    line_of_sight: bool | None = None,
    testbed: Testbed | None = None,
    profile: HardwareProfile = INTEL_5300,
    estimator_config: TofEstimatorConfig | None = None,
    n_packets_per_band: int = 3,
    n_sweeps: int = 1,
    batched: bool = False,
) -> list[TofSample]:
    """The §12.1 accuracy experiment: ToF error across testbed pairs.

    Args:
        n_pairs: Device-pair placements to evaluate.
        seed: Master seed (placements and hardware draws derive from it).
        line_of_sight: Restrict to LOS (True), NLOS (False) or both.
        testbed: The office floor; defaults to the Fig. 6 layout.
        profile: Card model for both devices.
        estimator_config: Estimator settings (profile computation is
            disabled by default for speed — ToF-only here).
        n_packets_per_band / n_sweeps: Acquisition depth.
        batched: Estimate every pair in one batched-engine submission
            instead of a scalar loop.  Acquisition order (and therefore
            the RNG stream and the measured CSI) is identical either
            way, so the two paths agree to floating-point noise.

    Returns:
        One :class:`TofSample` per evaluated pair.
    """
    tb = testbed or office_testbed()
    cfg = estimator_config or TofEstimatorConfig(compute_profile=False)
    rng = np.random.default_rng(seed)
    pairs = tb.location_pairs(n_pairs, rng, line_of_sight=line_of_sight)
    links: list[SimulatedLink] = []
    calibrations: list[LinkCalibration] = []
    sweeps_per_link: list[list] = []
    for tx_pos, rx_pos in pairs:
        tx_state = profile.sample_device_state(rng)
        rx_state = profile.sample_device_state(rng)
        calibrations.append(calibrate_pair(tx_state, rx_state, cfg, rng))
        link = SimulatedLink(
            environment=tb.environment,
            tx_position=tx_pos,
            rx_position=rx_pos,
            tx_state=tx_state,
            rx_state=rx_state,
            rng=rng,
        )
        links.append(link)
        sweeps_per_link.append(
            [link.sweep(n_packets_per_band) for _ in range(n_sweeps)]
        )
    if batched:
        estimates = BatchTofEngine(cfg).estimate_sweeps_batch(
            sweeps_per_link, calibrations
        )
    else:
        estimates = [
            TofEstimator(cfg, calibration).estimate_many(sweeps)
            for calibration, sweeps in zip(
                calibrations, sweeps_per_link, strict=True
            )
        ]
    return [
        TofSample(
            true_tof_s=link.true_tof_s,
            estimated_tof_s=estimate.tof_s,
            distance_m=link.true_distance_m,
            line_of_sight=link.line_of_sight,
            estimate=estimate,
        )
        for link, estimate in zip(links, estimates, strict=True)
    ]


@dataclass
class LocalizationSample:
    """One localization fix on the testbed."""

    error_m: float
    line_of_sight: bool
    residual_m: float
    n_anchors_used: int


def run_localization_experiment(
    n_pairs: int,
    antenna_separation_m: float,
    seed: int = 23,
    line_of_sight: bool | None = None,
    testbed: Testbed | None = None,
    profile: HardwareProfile = INTEL_5300,
    estimator_config: TofEstimatorConfig | None = None,
    n_sweeps: int = 1,
) -> list[LocalizationSample]:
    """The §12.2 experiment: 3-antenna receiver localizes a transmitter.

    ``antenna_separation_m`` is the §10/§12.2 knob: 0.3 m for a client
    laptop, 1.0 m for an access point.
    """
    tb = testbed or office_testbed()
    cfg = estimator_config or TofEstimatorConfig(compute_profile=False)
    rng = np.random.default_rng(seed)
    pairs = tb.location_pairs(n_pairs, rng, line_of_sight=line_of_sight)
    samples: list[LocalizationSample] = []
    for tx_pos, rx_pos in pairs:
        # Both devices are 3-antenna laptops in §12.2; the pairwise
        # distance strategy of §8 needs the transmit array too.
        transmitter = ChronosDevice.create(
            "tx",
            tx_pos,
            rng,
            profile,
            antenna_offsets=triangle_array(0.3),
            heading_rad=rng.uniform(0, 2 * np.pi),
        )
        receiver = ChronosDevice.create(
            "rx",
            rx_pos,
            rng,
            profile,
            antenna_offsets=triangle_array(antenna_separation_m),
            heading_rad=rng.uniform(0, 2 * np.pi),
        )
        pair = ChronosPair(
            tb.environment, receiver=receiver, transmitter=transmitter, rng=rng
        )
        pair.calibrate()
        fix = pair.localize(n_sweeps=n_sweeps)
        los = tb.environment.has_line_of_sight(tx_pos, rx_pos)
        samples.append(
            LocalizationSample(
                error_m=fix.error_m,
                line_of_sight=los,
                residual_m=fix.result.residual_rms_m,
                n_anchors_used=len(fix.result.used_indices),
            )
        )
    return samples


@dataclass
class DetectionDelaySample:
    """Per-packet detection delay vs propagation delay (Fig. 7c)."""

    detection_delays_s: np.ndarray
    propagation_delays_s: np.ndarray


def run_detection_delay_experiment(
    n_pairs: int = 10,
    seed: int = 31,
    testbed: Testbed | None = None,
    profile: HardwareProfile = INTEL_5300,
) -> DetectionDelaySample:
    """Collect per-packet detection delays the way §12.1 does.

    The paper computes detection delay from channel phase: the CSI
    slope gives total group delay (τ + δ + chain); subtracting the
    ToF estimate and the calibrated chain constant leaves δ.
    """
    from repro.core.interpolation import group_delay_s

    tb = testbed or office_testbed()
    rng = np.random.default_rng(seed)
    pairs = tb.location_pairs(n_pairs, rng)
    cfg = TofEstimatorConfig(compute_profile=False)
    detection: list[float] = []
    propagation: list[float] = []
    for tx_pos, rx_pos in pairs:
        tx_state = profile.sample_device_state(rng)
        rx_state = profile.sample_device_state(rng)
        link = SimulatedLink(
            environment=tb.environment,
            tx_position=tx_pos,
            rx_position=rx_pos,
            tx_state=tx_state,
            rx_state=rx_state,
            rng=rng,
        )
        calibration = calibrate_pair(tx_state, rx_state, cfg, rng)
        estimator = TofEstimator(cfg, calibration)
        sweep = link.sweep(3)
        estimate = estimator.estimate_many([sweep])
        chain_fwd = tx_state.tx_chain_delay_s + rx_state.rx_chain_delay_s
        for m in sweep:
            if m.band.is_2g4 and profile.phase_quirk_2g4:
                continue
            slope = group_delay_s(m.forward)
            delta = slope - estimate.tof_s - chain_fwd
            detection.append(delta)
            propagation.append(link.true_tof_s)
    return DetectionDelaySample(
        detection_delays_s=np.array(detection),
        propagation_delays_s=np.array(propagation),
    )


@dataclass(frozen=True)
class StreamingTrackingResult:
    """Outcome of a streamed multi-link tracking run.

    ``raw_rmse_m`` scores the per-sweep estimates against truth;
    ``tracked_rmse_m`` scores the smoothed tracker output — the §9
    synergy, measured outside the drone loop.  The coalescing counters
    show how many engine flushes served the whole session.
    """

    n_links: int
    n_requests: int
    n_failed: int
    n_flushes: int
    mean_links_per_flush: float
    raw_rmse_m: float
    tracked_rmse_m: float

    @property
    def synergy(self) -> float:
        """Raw-over-tracked error ratio (> 1 means tracking helps)."""
        if self.tracked_rmse_m == 0.0:
            return float("inf")
        return self.raw_rmse_m / self.tracked_rmse_m


@dataclass(frozen=True)
class FleetLocalizationResult:
    """Outcome of a streamed multi-client localization run.

    ``fix_rmse_m`` / ``median_fix_error_m`` score the raw per-tick §8
    fixes against ground truth (the Fig. 8 statistic, here for a whole
    fleet at once); ``tracked_rmse_m`` scores the smoothed position
    tracks.  The coalescing counters show how many engine flushes and
    batched position solves served the entire session.
    """

    n_clients: int
    n_anchors: int
    n_fix_attempts: int
    n_fixes: int
    n_failed: int
    fix_rmse_m: float
    median_fix_error_m: float
    tracked_rmse_m: float
    n_range_flushes: int
    mean_links_per_flush: float
    n_solves: int
    mean_clients_per_solve: float

    @property
    def synergy(self) -> float:
        """Raw-over-tracked error ratio (> 1 means tracking helps)."""
        if self.tracked_rmse_m == 0.0:
            return float("inf")
        return self.fix_rmse_m / self.tracked_rmse_m


def run_fleet_localization_experiment(
    n_clients: int = 8,
    n_anchors: int = 4,
    n_ticks: int = 10,
    rate_hz: float = 5.0,
    speed_mps: float = 0.6,
    noise: float = 0.03,
    outlier_probability: float = 0.08,
    floor_m: tuple[float, float] = (14.0, 10.0),
    seed: int = 71,
    estimator_config: TofEstimatorConfig | None = None,
    anchors_per_client: int | None = None,
) -> FleetLocalizationResult:
    """Stream a fleet of moving clients through the full serving stack.

    The §8 deployment scenario at fleet scale: ``n_anchors`` anchor
    antennas ring an office floor, ``n_clients`` clients walk constant-
    velocity paths across it, and every tick each client's sweep fans
    out to all anchors through one shared
    :class:`~repro.loc.service.LocalizationService`.  The per-anchor
    CSI is synthetic 5 GHz multipath (direct path + one bounce + noise)
    with occasional body-blocked sweeps whose dominant late reflection
    yanks that anchor's range meters off — exercising the geometry
    filter and the position tracks' innovation gating end to end.

    The point of the exercise is the coalescing: all of a tick's
    anchor links land in one micro-batch flush, and clients sharing an
    anchor set solve their circle systems through one batched call —
    the counters in the result pin both.

    ``anchors_per_client`` opts into the multi-AP regime: each client
    hears only a fixed random subset of that many anchors and its
    ``locate`` calls name the subset via request-level
    ``anchor_indices``.  Clients sharing a subset still coalesce into
    one batched position solve (the queue groups by anchor-set
    signature); ``None`` keeps the every-client-hears-every-anchor
    default.
    """
    import asyncio

    from repro.core.ndft import steering_vector
    from repro.loc import LocalizationService, PositionTrackerBank
    from repro.net.service import RangingRequest
    from repro.stream import StreamConfig
    from repro.wifi.bands import US_BAND_PLAN

    if n_clients < 1:
        raise ValueError(f"need at least one client, got {n_clients}")
    if n_anchors < 3:
        raise ValueError(
            f"fleet localization wants >= 3 anchors, got {n_anchors}"
        )
    if n_ticks < 1:
        raise ValueError(f"need at least one tick, got {n_ticks}")
    if anchors_per_client is not None and not (
        3 <= anchors_per_client <= n_anchors
    ):
        raise ValueError(
            f"anchors_per_client must be in [3, {n_anchors}], "
            f"got {anchors_per_client}"
        )
    cfg = estimator_config or TofEstimatorConfig(
        quirk_2g4=False, compute_profile=False
    )
    freqs = US_BAND_PLAN.subset_5g().center_frequencies_hz
    rng = np.random.default_rng(seed)
    width, height = floor_m
    # Anchors ring the floor (an ellipse inscribed in the walls) — the
    # spread keeps every client's circle system well-conditioned.
    angles = 2.0 * np.pi * np.arange(n_anchors) / n_anchors + np.pi / n_anchors
    anchors = [
        Point(
            width / 2.0 + 0.45 * width * math.cos(a),
            height / 2.0 + 0.45 * height * math.sin(a),
        )
        for a in angles
    ]
    start = np.column_stack(
        [
            rng.uniform(0.2 * width, 0.8 * width, n_clients),
            rng.uniform(0.2 * height, 0.8 * height, n_clients),
        ]
    )
    heading = rng.uniform(0.0, 2.0 * np.pi, n_clients)
    velocity = speed_mps * np.column_stack([np.cos(heading), np.sin(heading)])
    client_ids = [f"client-{i}" for i in range(n_clients)]
    index = {cid: i for i, cid in enumerate(client_ids)}
    # Each client's anchor set: the whole deployment by default, or a
    # fixed random subset in the multi-AP regime.  Sorted, so clients
    # drawing the same subset share a solve-queue signature.
    if anchors_per_client is None:
        anchor_sets = {cid: tuple(range(n_anchors)) for cid in client_ids}
    else:
        anchor_sets = {
            cid: tuple(
                sorted(
                    int(k)
                    for k in rng.choice(
                        n_anchors, size=anchors_per_client, replace=False
                    )
                )
            )
            for cid in client_ids
        }

    def true_position(cid: str, t_s: float) -> Point:
        i = index[cid]
        return Point(
            float(start[i, 0] + velocity[i, 0] * t_s),
            float(start[i, 1] + velocity[i, 1] * t_s),
        )

    def requests_for(cid: str, t_s: float) -> list[RangingRequest]:
        position = true_position(cid, t_s)
        requests = []
        for k in anchor_sets[cid]:
            anchor = anchors[k]
            tau2 = 2.0 * anchor.distance_to(position) / SPEED_OF_LIGHT
            h = steering_vector(freqs, tau2)
            h = h + 0.35 * steering_vector(freqs, tau2 + 30e-9)
            if rng.random() < outlier_probability:
                # Body-blocked sweep: a dominant late bounce drags this
                # anchor's range meters off — geometry-filter food.
                h = 0.1 * h + 2.0 * steering_vector(
                    freqs, tau2 + rng.uniform(25e-9, 60e-9)
                )
            h = h + noise * (
                rng.normal(size=len(freqs)) + 1j * rng.normal(size=len(freqs))
            )
            requests.append(RangingRequest(f"{cid}:anchor-{k}", freqs, h))
        return requests

    service = LocalizationService(
        anchors,
        config=cfg,
        stream=StreamConfig(max_wait_s=1e-3),
        trackers=PositionTrackerBank(),
    )

    async def run() -> list[tuple[float, list]]:
        ticks = []
        for k in range(n_ticks):
            t_s = (k + 1) / rate_hz
            fixes = await asyncio.gather(
                *(
                    service.locate(
                        cid,
                        requests_for(cid, t_s),
                        time_s=t_s,
                        anchor_indices=(
                            None
                            if anchors_per_client is None
                            else anchor_sets[cid]
                        ),
                    )
                    for cid in client_ids
                )
            )
            ticks.append((t_s, fixes))
        await service.drain()
        return ticks

    try:
        ticks = asyncio.run(run())
    finally:
        service.close()  # release the streaming layer's flush worker

    raw_sq: list[float] = []
    tracked_sq: list[float] = []
    for t_s, fixes in ticks:
        for fix in fixes:
            if not fix.ok:
                continue
            truth = true_position(fix.client_id, t_s)
            raw_sq.append(fix.position.distance_to(truth) ** 2)
            if fix.track is not None:
                tracked_sq.append(fix.track.position.distance_to(truth) ** 2)
    if not raw_sq:
        raise ValueError("fleet run produced no usable fixes")
    stats = service.stats
    ranging = service.ranging.stats
    return FleetLocalizationResult(
        n_clients=n_clients,
        n_anchors=n_anchors,
        n_fix_attempts=stats.n_fixes + stats.n_failed,
        n_fixes=stats.n_fixes,
        n_failed=stats.n_failed,
        fix_rmse_m=float(np.sqrt(np.mean(raw_sq))),
        median_fix_error_m=float(np.median(np.sqrt(raw_sq))),
        tracked_rmse_m=float(np.sqrt(np.mean(tracked_sq)))
        if tracked_sq
        else float("nan"),
        n_range_flushes=ranging.n_flushes,
        mean_links_per_flush=ranging.mean_links_per_flush,
        n_solves=stats.n_solves,
        mean_clients_per_solve=stats.mean_clients_per_solve,
    )


def run_streaming_tracking_experiment(
    n_links: int = 6,
    duration_s: float = 2.0,
    rate_hz: float = 12.0,
    speed_mps: float = 0.5,
    noise: float = 0.05,
    outlier_probability: float = 0.1,
    seed: int = 47,
    estimator_config: TofEstimatorConfig | None = None,
    warm_start: bool = False,
) -> StreamingTrackingResult:
    """Stream ``n_links`` moving links through the ranging subsystem.

    Each link is a constant-velocity target emitting synthetic 5 GHz
    reciprocity products at the §4 sweep cadence (scheduled via the
    mac.sim event loop, so arrivals stagger like real radios).  With
    probability ``outlier_probability`` a sweep is corrupted by a
    dominant late reflection — the multipath ghost §9's filtering is
    there to reject.  All links stream concurrently through one
    :class:`~repro.stream.service.StreamingRangingService`, so the
    micro-batcher coalesces each tick's arrivals into one engine call,
    and a :class:`~repro.stream.tracker.TrackerBank` smooths each link.

    With ``warm_start=True`` the service closes the temporal loop: each
    link's previous solve (cached as a
    :class:`~repro.core.hints.SolveHint`) and the shared tracker bank's
    predictions seed the next tick's solve, exercising the Δ-solve path
    end to end on the same moving-fleet scenario.
    """
    from repro.core.ndft import steering_vector
    from repro.net.service import RangingRequest
    from repro.stream import (
        StreamConfig,
        StreamSession,
        StreamingRangingService,
        TrackerBank,
        TrackerConfig,
        schedule_sweep_arrivals,
    )
    from repro.wifi.bands import US_BAND_PLAN

    if n_links < 1:
        raise ValueError(f"need at least one link, got {n_links}")
    cfg = estimator_config or TofEstimatorConfig(
        quirk_2g4=False, compute_profile=False
    )
    freqs = US_BAND_PLAN.subset_5g().center_frequencies_hz
    rng = np.random.default_rng(seed)
    start_m = rng.uniform(3.0, 12.0, n_links)
    velocity_mps = rng.uniform(-speed_mps, speed_mps, n_links)
    link_ids = [f"link-{i}" for i in range(n_links)]
    index = {link_id: i for i, link_id in enumerate(link_ids)}

    def true_distance(link_id: str, t_s: float) -> float:
        i = index[link_id]
        return float(start_m[i] + velocity_mps[i] * t_s)

    def make_request(link_id: str, t_s: float) -> RangingRequest:
        tau2 = 2.0 * true_distance(link_id, t_s) / SPEED_OF_LIGHT
        h = steering_vector(freqs, tau2)
        h = h + 0.4 * steering_vector(freqs, tau2 + 30e-9)
        if rng.random() < outlier_probability:
            # A body-blocked sweep: the direct path drops below the
            # first-peak amplitude floor and a strong bounce takes
            # over, so the raw estimate jumps meters late — the
            # multipath ghost §9's filtering is there to reject.
            h = 0.1 * h + 2.0 * steering_vector(
                freqs, tau2 + rng.uniform(20e-9, 60e-9)
            )
        h = h + noise * (
            rng.normal(size=len(freqs)) + 1j * rng.normal(size=len(freqs))
        )
        return RangingRequest(link_id, freqs, h)

    arrivals = schedule_sweep_arrivals(
        link_ids,
        duration_s,
        make_request,
        sweep_duration_s=1.0 / rate_hz,
        # Millisecond staggering: same tick, not perfectly simultaneous.
        start_offsets_s=list(rng.uniform(0.0, 2e-3, n_links)),
    )
    trackers = TrackerBank(
        # Per-sweep precision of the clean synthetic links is ~mm; the
        # gate floor is what rejects the meters-late blocked sweeps.
        TrackerConfig(measurement_sigma_m=0.01, process_accel_sigma_mps2=1.0)
    )
    service = StreamingRangingService(
        cfg,
        StreamConfig(max_wait_s=1e-3, warm_start=warm_start),
        trackers=trackers,
    )
    session = StreamSession(service, trackers, coalesce_window_s=5e-3)
    try:
        points = session.run(arrivals)
    finally:
        service.close()  # release the streaming layer's flush worker

    raw_sq, tracked_sq = [], []
    for point in points:
        if not point.ok or point.state is None:
            continue
        truth = true_distance(point.link_id, point.time_s)
        raw_sq.append((point.raw_tof_s * SPEED_OF_LIGHT - truth) ** 2)
        tracked_sq.append((point.state.range_m - truth) ** 2)
    if not raw_sq:
        raise ValueError("streaming run produced no usable estimates")
    stats = service.stats
    return StreamingTrackingResult(
        n_links=n_links,
        n_requests=stats.n_requests,
        n_failed=stats.n_failed,
        n_flushes=stats.n_flushes,
        mean_links_per_flush=stats.mean_links_per_flush,
        raw_rmse_m=float(np.sqrt(np.mean(raw_sq))),
        tracked_rmse_m=float(np.sqrt(np.mean(tracked_sq))),
    )
