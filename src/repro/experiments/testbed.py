"""The paper's testbed: one floor of a large office building (Fig. 6).

"The floor has multiple offices, a lounge area, conference rooms, metal
cabinets, computers and furniture" — 20 m × 20 m, with 30 candidate
device locations (the blue dots of Fig. 6) and device pairs up to 15 m
apart, in both line-of-sight and non-line-of-sight.

The layout below models that floor: brick outer walls, drywall offices
around the perimeter, a central corridor pair, two conference-room
partitions, a few metal cabinets.  Dense partitioning matters
physically: long skew echoes cross several walls and die, which keeps
every significant squared-channel component inside the 200 ns CRT
window — the same property a real furnished office floor has (and the
paper's 60 m unambiguity argument relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.rf.environment import Clutter, Environment, Wall, rectangular_room
from repro.rf.geometry import Point, Segment
from repro.rf.materials import BRICK, CONCRETE, DRYWALL, GLASS, METAL

FLOOR_SIZE_M = 20.0
"""Side length of the square office floor (Fig. 6)."""

N_CANDIDATE_LOCATIONS = 30
"""Number of candidate device locations (blue dots in Fig. 6)."""

MAX_PAIR_DISTANCE_M = 15.0
"""The paper evaluates pairs 'with their pairwise distance up to 15 m'."""


def _office_walls() -> list[Wall]:
    """The floorplan: perimeter offices, corridors, conference rooms."""

    def wall(x1, y1, x2, y2, material=DRYWALL):
        return Wall(Segment(Point(x1, y1), Point(x2, y2)), material)

    walls: list[Wall] = []
    # Perimeter office fronts (drywall) along the south and north edges,
    # with door gaps between the segments.
    walls += [
        wall(0.0, 4.0, 3.4, 4.0),
        wall(4.0, 4.0, 7.4, 4.0),
        wall(8.0, 4.0, 11.4, 4.0),
        wall(12.0, 4.0, 15.4, 4.0),
        wall(16.0, 4.0, 20.0, 4.0),
        wall(0.0, 16.0, 3.4, 16.0),
        wall(4.0, 16.0, 7.4, 16.0),
        wall(8.0, 16.0, 11.4, 16.0),
        wall(12.0, 16.0, 15.4, 16.0),
        wall(16.0, 16.0, 20.0, 16.0),
    ]
    # Office side walls (south row and north row).
    for x in (4.0, 8.0, 12.0, 16.0):
        walls.append(wall(x, 0.0, x, 4.0))
        walls.append(wall(x, 16.0, x, 20.0))
    # Conference rooms in the middle band, glass fronts.
    walls += [
        wall(2.0, 8.0, 6.0, 8.0, GLASS),
        wall(2.0, 12.0, 6.0, 12.0, GLASS),
        wall(2.0, 8.0, 2.0, 12.0),
        wall(6.0, 8.0, 6.0, 10.2),
        wall(14.0, 8.0, 18.0, 8.0, GLASS),
        wall(14.0, 12.0, 18.0, 12.0, GLASS),
        wall(18.0, 8.0, 18.0, 12.0),
        wall(14.0, 9.8, 14.0, 12.0),
    ]
    # Lounge divider and a load-bearing concrete core column wall.
    walls += [
        wall(9.0, 9.0, 11.0, 9.0, CONCRETE),
        wall(9.0, 11.0, 11.0, 11.0, CONCRETE),
        wall(9.0, 9.0, 9.0, 11.0, CONCRETE),
        wall(11.0, 9.0, 11.0, 11.0, CONCRETE),
    ]
    # Metal cabinets (strong reflectors, as the paper notes).
    walls += [
        wall(7.0, 5.2, 7.0, 6.8, METAL),
        wall(13.0, 13.2, 13.0, 14.8, METAL),
    ]
    return walls


@dataclass
class Testbed:
    """The office floor plus its candidate device locations.

    Attributes:
        environment: The ray-traced world.
        locations: Candidate device positions (Fig. 6's blue dots).
        rng_seed: Seed used to draw the locations (kept for provenance).
    """

    environment: Environment
    locations: tuple[Point, ...]
    rng_seed: int

    def line_of_sight(self, a: Point, b: Point) -> bool:
        """Whether two locations see each other directly."""
        return self.environment.has_line_of_sight(a, b)

    def location_pairs(
        self,
        n_pairs: int,
        rng: np.random.Generator,
        line_of_sight: bool | None = None,
        min_distance_m: float = 1.0,
        max_distance_m: float = MAX_PAIR_DISTANCE_M,
    ) -> list[tuple[Point, Point]]:
        """Random location pairs, optionally filtered by LOS condition.

        Mirrors the paper's §12.1 method: devices placed at random
        candidate locations with pairwise distance up to 15 m, in both
        LOS and NLOS configurations.
        """
        if n_pairs < 1:
            raise ValueError(f"need at least one pair, got {n_pairs}")
        eligible: list[tuple[Point, Point]] = []
        for i, a in enumerate(self.locations):
            for b in self.locations[i + 1 :]:
                d = a.distance_to(b)
                if not min_distance_m <= d <= max_distance_m:
                    continue
                if line_of_sight is not None:
                    if self.line_of_sight(a, b) != line_of_sight:
                        continue
                eligible.append((a, b))
        if not eligible:
            raise ValueError("no eligible location pairs under the constraints")
        picks = rng.choice(len(eligible), size=min(n_pairs, len(eligible)), replace=False)
        return [eligible[int(k)] for k in picks]

    def classify_pairs(self) -> dict[str, int]:
        """Count LOS vs NLOS pairs among all eligible pairs (diagnostics)."""
        counts = {"los": 0, "nlos": 0}
        for i, a in enumerate(self.locations):
            for b in self.locations[i + 1 :]:
                if not 1.0 <= a.distance_to(b) <= MAX_PAIR_DISTANCE_M:
                    continue
                key = "los" if self.line_of_sight(a, b) else "nlos"
                counts[key] += 1
        return counts


def office_testbed(
    seed: int = 7,
    clutter: Clutter | None = None,
    n_locations: int = N_CANDIDATE_LOCATIONS,
) -> Testbed:
    """Build the Fig. 6 office floor with ``n_locations`` candidate spots.

    Locations are drawn away from walls (≥ 40 cm clearance) and
    deterministically for a given seed, so experiments are reproducible.
    """
    if n_locations < 2:
        raise ValueError(f"need at least 2 locations, got {n_locations}")
    env = rectangular_room(
        FLOOR_SIZE_M,
        FLOOR_SIZE_M,
        BRICK,
        inner_walls=_office_walls(),
        clutter=clutter if clutter is not None else Clutter(),
    )
    rng = np.random.default_rng(seed)
    locations: list[Point] = []
    attempts = 0
    while len(locations) < n_locations and attempts < 10000:
        attempts += 1
        p = Point(rng.uniform(0.5, FLOOR_SIZE_M - 0.5), rng.uniform(0.5, FLOOR_SIZE_M - 0.5))
        if _too_close_to_wall(p, env, 0.4):
            continue
        if any(p.distance_to(q) < 1.5 for q in locations):
            continue
        locations.append(p)
    if len(locations) < n_locations:
        raise RuntimeError("could not place the requested number of locations")
    return Testbed(environment=env, locations=tuple(locations), rng_seed=seed)


def _too_close_to_wall(p: Point, env: Environment, clearance_m: float) -> bool:
    """True when ``p`` is within ``clearance_m`` of any wall segment."""
    for wall in env.walls:
        seg = wall.segment
        d = seg.b - seg.a
        denom = d.dot(d)
        if denom <= 0:
            continue
        t = max(0.0, min(1.0, (p - seg.a).dot(d) / denom))
        foot = seg.a + t * d
        if p.distance_to(foot) < clearance_m:
            return True
    return False
