"""One entry point per paper figure.

Every function regenerates the data behind a figure of the paper's
evaluation and returns a small results object whose fields are the
numbers the paper quotes.  Benchmarks print these and assert the
*shape* claims (orderings, rough factors); EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.crt import alignment_votes, crt_align
from repro.core.ndft import tau_grid
from repro.core.sparse import invert_ndft
from repro.core.profile import MultipathProfile
from repro.core.tof import TofEstimatorConfig
from repro.drone.follow import FollowConfig, FollowSimulation
from repro.experiments.metrics import Summary, summarize
from repro.experiments.runner import (
    run_detection_delay_experiment,
    run_localization_experiment,
    run_tof_experiment,
)
from repro.experiments.testbed import Testbed, office_testbed
from repro.mac.hopping import HoppingConfig, HoppingProtocol
from repro.net.tcp import TcpFlowSimulation, TcpTrace
from repro.net.video import VideoStreamSimulation, VideoTrace
from repro.rf.constants import SPEED_OF_LIGHT, distance_to_tof
from repro.rf.channel import channel_at
from repro.rf.paths import from_delays
from repro.wifi.bands import US_BAND_PLAN


# ----------------------------------------------------------------------
# Fig. 3 — the CRT alignment picture
# ----------------------------------------------------------------------
@dataclass
class Fig3Result:
    """Phase-alignment voting for the paper's 0.6 m example."""

    true_tof_s: float
    estimated_tof_s: float
    grid_s: np.ndarray
    votes: np.ndarray

    @property
    def error_s(self) -> float:
        return abs(self.estimated_tof_s - self.true_tof_s)


def figure_3(distance_m: float = 0.6) -> Fig3Result:
    """Reproduce Fig. 3: five bands vote on a 2 ns time-of-flight."""
    frequencies = [2.412e9, 2.462e9, 5.18e9, 5.3e9, 5.825e9]
    tof = distance_to_tof(distance_m)
    phases = [-2.0 * np.pi * f * tof for f in frequencies]
    grid, votes = alignment_votes(phases, frequencies, max_delay_s=3.5e-9)
    best = crt_align(phases, frequencies, max_delay_s=3.5e-9)
    return Fig3Result(
        true_tof_s=tof, estimated_tof_s=best, grid_s=grid, votes=votes
    )


# ----------------------------------------------------------------------
# Fig. 4 — multipath profile of the worked 3-path example
# ----------------------------------------------------------------------
@dataclass
class Fig4Result:
    """Sparse inverse-NDFT profile of the 5.2/10/16 ns example."""

    profile: MultipathProfile
    true_delays_s: tuple[float, ...]
    recovered_delays_s: tuple[float, ...]

    @property
    def max_peak_error_s(self) -> float:
        errors = [
            min(abs(r - t) for r in self.recovered_delays_s)
            for t in self.true_delays_s
        ]
        return max(errors)


def figure_4() -> Fig4Result:
    """Reproduce Fig. 4(b): three paths at 5.2, 10 and 16 ns."""
    delays = (5.2e-9, 10e-9, 16e-9)
    amplitudes = (1.0, 0.65, 0.45)
    paths = from_delays(delays, amplitudes)
    freqs = US_BAND_PLAN.subset_5g().center_frequencies_hz
    channels = channel_at(paths, freqs)
    grid = tau_grid(200e-9, 0.25e-9)
    solution = invert_ndft(channels, freqs, grid)
    profile = MultipathProfile(grid, solution, dominance_threshold_rel=0.05)
    recovered = tuple(p.delay_s for p in profile.peaks()[:3])
    return Fig4Result(
        profile=profile, true_delays_s=delays, recovered_delays_s=recovered
    )


# ----------------------------------------------------------------------
# Fig. 7a — ToF error CDFs
# ----------------------------------------------------------------------
@dataclass
class Fig7aResult:
    """Time-of-flight accuracy, LOS and NLOS (ns summaries)."""

    los_ns: Summary
    nlos_ns: Summary
    los_errors_ns: np.ndarray
    nlos_errors_ns: np.ndarray


def figure_7a(
    n_pairs_per_condition: int = 30,
    seed: int = 11,
    testbed: Testbed | None = None,
) -> Fig7aResult:
    """Reproduce Fig. 7a: CDF of ToF error in LOS and NLOS."""
    tb = testbed or office_testbed()
    los = run_tof_experiment(
        n_pairs_per_condition, seed=seed, line_of_sight=True, testbed=tb
    )
    nlos = run_tof_experiment(
        n_pairs_per_condition, seed=seed + 1, line_of_sight=False, testbed=tb
    )
    los_ns = np.array([s.abs_error_s for s in los]) * 1e9
    nlos_ns = np.array([s.abs_error_s for s in nlos]) * 1e9
    return Fig7aResult(
        los_ns=summarize(los_ns),
        nlos_ns=summarize(nlos_ns),
        los_errors_ns=los_ns,
        nlos_errors_ns=nlos_ns,
    )


# ----------------------------------------------------------------------
# Fig. 7b — representative multipath profiles + sparsity statistics
# ----------------------------------------------------------------------
@dataclass
class Fig7bResult:
    """Profiles and dominant-peak statistics (§12.1's sparsity claim)."""

    los_profile: MultipathProfile
    nlos_profile: MultipathProfile
    mean_dominant_peaks: float
    std_dominant_peaks: float
    los_peaks: int
    nlos_peaks: int


def figure_7b(
    n_pairs: int = 12, seed: int = 17, testbed: Testbed | None = None
) -> Fig7bResult:
    """Reproduce Fig. 7b: profile sparsity in LOS vs multipath settings."""
    tb = testbed or office_testbed()
    cfg = TofEstimatorConfig(compute_profile=True)
    los = run_tof_experiment(
        max(2, n_pairs // 2),
        seed=seed,
        line_of_sight=True,
        testbed=tb,
        estimator_config=cfg,
    )
    nlos = run_tof_experiment(
        max(2, n_pairs // 2),
        seed=seed + 1,
        line_of_sight=False,
        testbed=tb,
        estimator_config=cfg,
    )
    counts = [
        s.estimate.profile.dominant_peak_count() for s in los + nlos
    ]
    return Fig7bResult(
        los_profile=los[0].estimate.profile,
        nlos_profile=nlos[0].estimate.profile,
        mean_dominant_peaks=float(np.mean(counts)),
        std_dominant_peaks=float(np.std(counts)),
        los_peaks=los[0].estimate.profile.dominant_peak_count(),
        nlos_peaks=nlos[0].estimate.profile.dominant_peak_count(),
    )


# ----------------------------------------------------------------------
# Fig. 7c — detection delay vs propagation delay histograms
# ----------------------------------------------------------------------
@dataclass
class Fig7cResult:
    """Detection-delay and ToF distributions (ns summaries)."""

    detection_ns: Summary
    propagation_ns: Summary

    @property
    def delay_ratio(self) -> float:
        """Median detection delay over median ToF (paper: ≈8×)."""
        return self.detection_ns.median / self.propagation_ns.median


def figure_7c(n_pairs: int = 10, seed: int = 31) -> Fig7cResult:
    """Reproduce Fig. 7c: packet detection delay dwarfs time-of-flight."""
    sample = run_detection_delay_experiment(n_pairs=n_pairs, seed=seed)
    return Fig7cResult(
        detection_ns=summarize(sample.detection_delays_s * 1e9),
        propagation_ns=summarize(sample.propagation_delays_s * 1e9),
    )


# ----------------------------------------------------------------------
# Fig. 8a — distance error versus range
# ----------------------------------------------------------------------
@dataclass
class Fig8aResult:
    """Distance error bucketed by true range."""

    bucket_edges_m: tuple[tuple[float, float], ...]
    los_median_cm: list[float]
    nlos_median_cm: list[float]


def figure_8a(
    n_pairs_per_condition: int = 60,
    seed: int = 41,
    testbed: Testbed | None = None,
) -> Fig8aResult:
    """Reproduce Fig. 8a: error grows with distance (SNR falls)."""
    tb = testbed or office_testbed()
    buckets = ((0.0, 2.0), (2.0, 4.0), (4.0, 6.0), (6.0, 8.0), (8.0, 10.0), (10.0, 12.0), (12.0, 15.0))
    los = run_tof_experiment(
        n_pairs_per_condition, seed=seed, line_of_sight=True, testbed=tb
    )
    nlos = run_tof_experiment(
        n_pairs_per_condition, seed=seed + 1, line_of_sight=False, testbed=tb
    )

    def bucket_medians(samples) -> list[float]:
        out = []
        for lo, hi in buckets:
            vals = [
                s.abs_error_m * 100.0 for s in samples if lo <= s.distance_m < hi
            ]
            out.append(float(np.median(vals)) if vals else float("nan"))
        return out

    return Fig8aResult(
        bucket_edges_m=buckets,
        los_median_cm=bucket_medians(los),
        nlos_median_cm=bucket_medians(nlos),
    )


# ----------------------------------------------------------------------
# Fig. 8b / 8c — localization CDFs at two antenna separations
# ----------------------------------------------------------------------
@dataclass
class Fig8bcResult:
    """Localization error summaries for one antenna separation."""

    separation_m: float
    los_cm: Summary
    nlos_cm: Summary
    los_errors_cm: np.ndarray
    nlos_errors_cm: np.ndarray


def figure_8b(
    n_pairs_per_condition: int = 15,
    seed: int = 43,
    testbed: Testbed | None = None,
) -> Fig8bcResult:
    """Reproduce Fig. 8b: client-class 30 cm antenna separation."""
    return _localization_figure(0.3, n_pairs_per_condition, seed, testbed)


def figure_8c(
    n_pairs_per_condition: int = 15,
    seed: int = 47,
    testbed: Testbed | None = None,
) -> Fig8bcResult:
    """Reproduce Fig. 8c: AP-class 100 cm antenna separation."""
    return _localization_figure(1.0, n_pairs_per_condition, seed, testbed)


def _localization_figure(
    separation_m: float, n_pairs: int, seed: int, testbed: Testbed | None
) -> Fig8bcResult:
    tb = testbed or office_testbed()
    los = run_localization_experiment(
        n_pairs, separation_m, seed=seed, line_of_sight=True, testbed=tb
    )
    nlos = run_localization_experiment(
        n_pairs, separation_m, seed=seed + 1, line_of_sight=False, testbed=tb
    )
    los_cm = np.array([s.error_m for s in los]) * 100.0
    nlos_cm = np.array([s.error_m for s in nlos]) * 100.0
    return Fig8bcResult(
        separation_m=separation_m,
        los_cm=summarize(los_cm),
        nlos_cm=summarize(nlos_cm),
        los_errors_cm=los_cm,
        nlos_errors_cm=nlos_cm,
    )


# ----------------------------------------------------------------------
# Fig. 9a — sweep (hopping) time CDF
# ----------------------------------------------------------------------
@dataclass
class Fig9aResult:
    """Band-hopping sweep durations."""

    durations_ms: Summary
    samples_ms: np.ndarray


def figure_9a(n_sweeps: int = 200, seed: int = 53) -> Fig9aResult:
    """Reproduce Fig. 9a: the 84 ms median sweep time."""
    rng = np.random.default_rng(seed)
    durations = HoppingProtocol().sweep_durations(n_sweeps, rng) * 1e3
    return Fig9aResult(durations_ms=summarize(durations), samples_ms=durations)


# ----------------------------------------------------------------------
# Fig. 9b — video streaming across a localization request
# ----------------------------------------------------------------------
def figure_9b() -> VideoTrace:
    """Reproduce Fig. 9b: buffered video rides out the 84 ms sweep."""
    return VideoStreamSimulation().run()


# ----------------------------------------------------------------------
# Fig. 9c — TCP throughput across a localization request
# ----------------------------------------------------------------------
def figure_9c(seed: int = 59) -> TcpTrace:
    """Reproduce Fig. 9c: the ~6.5 % TCP throughput dip."""
    return TcpFlowSimulation().run(np.random.default_rng(seed))


# ----------------------------------------------------------------------
# Fig. 10a/b — the personal drone
# ----------------------------------------------------------------------
@dataclass
class Fig10Result:
    """Follow-loop accuracy and one representative trajectory."""

    deviation_cm: Summary
    rmse_per_run_cm: list[float]
    raw_ranging_rmse_cm: float
    user_track: list
    drone_track: list
    mean_track_distance_m: float


def figure_10(n_runs: int = 8, seed: int = 61) -> Fig10Result:
    """Reproduce Fig. 10a (deviation CDF) and 10b (trajectory)."""
    deviations: list[float] = []
    rmses: list[float] = []
    raw_rmses: list[float] = []
    last = None
    for k in range(n_runs):
        sim = FollowSimulation()
        result = sim.run(np.random.default_rng(seed + k))
        deviations.extend(result.deviations_m * 100.0)
        rmses.append(result.rmse_m * 100.0)
        raw_rmses.append(result.raw_ranging_rmse_m * 100.0)
        last = result
    assert last is not None
    distances = [
        d.distance_to(u)
        for d, u in zip(last.drone_track, last.user_track, strict=True)
    ]
    return Fig10Result(
        deviation_cm=summarize(deviations),
        rmse_per_run_cm=rmses,
        raw_ranging_rmse_cm=float(np.median(raw_rmses)),
        user_track=last.user_track,
        drone_track=last.drone_track,
        mean_track_distance_m=float(np.mean(distances)),
    )
