"""Statistics helpers shared by experiments and benchmarks.

The paper reports medians, 95th percentiles and empirical CDFs; these
helpers compute them in one consistent way so benchmark output matches
EXPERIMENTS.md exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(sorted values, P(X <= value))``."""
    vals = np.sort(np.asarray(values, dtype=float))
    if vals.size == 0:
        raise ValueError("need at least one value")
    probs = np.arange(1, len(vals) + 1) / len(vals)
    return vals, probs


def median(values) -> float:
    """Median of the values."""
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise ValueError("need at least one value")
    return float(np.median(vals))


def percentile(values, q: float) -> float:
    """The q-th percentile (0–100)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0,100], got {q}")
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise ValueError("need at least one value")
    return float(np.percentile(vals, q))


@dataclass(frozen=True)
class Summary:
    """Distribution summary used across experiment reports."""

    n: int
    median: float
    mean: float
    std: float
    p90: float
    p95: float
    maximum: float

    def scaled(self, factor: float) -> "Summary":
        """Unit-converted copy (e.g. seconds to nanoseconds)."""
        return Summary(
            n=self.n,
            median=self.median * factor,
            mean=self.mean * factor,
            std=self.std * factor,
            p90=self.p90 * factor,
            p95=self.p95 * factor,
            maximum=self.maximum * factor,
        )


def summarize(values) -> Summary:
    """Summary statistics of a sample."""
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise ValueError("need at least one value")
    return Summary(
        n=int(vals.size),
        median=float(np.median(vals)),
        mean=float(np.mean(vals)),
        std=float(np.std(vals)),
        p90=float(np.percentile(vals, 90)),
        p95=float(np.percentile(vals, 95)),
        maximum=float(np.max(vals)),
    )
