"""Plain-text rendering of experiment results.

Benchmarks print these tables; EXPERIMENTS.md embeds them.  Everything
is fixed-width text so diffs of re-runs are readable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.metrics import Summary, cdf


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Align a small table of strings/numbers for terminal output."""
    if not headers:
        raise ValueError("need at least one column")
    str_rows = [[_fmt(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths, strict=True))
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def summary_row(label: str, summary: Summary) -> list[object]:
    """A standard [label, n, median, p90, p95, max] table row."""
    return [
        label,
        summary.n,
        summary.median,
        summary.p90,
        summary.p95,
        summary.maximum,
    ]


def cdf_sketch(values, width: int = 50, points: int = 10) -> str:
    """A coarse text CDF: quantile markers along a line.

    Gives benchmark logs a visual cue of the distribution the paper
    plots, without needing a plotting stack.
    """
    vals, probs = cdf(values)
    qs = np.linspace(0.05, 0.95, points)
    lines = []
    vmax = vals[-1] if vals[-1] > 0 else 1.0
    for q in qs:
        v = float(np.interp(q, probs, vals))
        pos = int(round((v / vmax) * (width - 1)))
        line = [" "] * width
        line[min(pos, width - 1)] = "*"
        lines.append(f"P{int(q * 100):02d} |" + "".join(line) + f"| {v:.3g}")
    return "\n".join(lines)
