"""Experiment harness: the paper's testbed and one driver per figure.

* :mod:`repro.experiments.testbed` — the 20 m × 20 m office floor of
  Fig. 6 with its 30 candidate locations.
* :mod:`repro.experiments.metrics` — CDFs, medians, percentiles.
* :mod:`repro.experiments.runner` — reusable experiment drivers (ToF
  accuracy, localization, traffic impact, drone following).
* :mod:`repro.experiments.figures` — one entry point per paper figure,
  returning structured results the benchmarks print and assert on.
* :mod:`repro.experiments.report` — plain-text table rendering.
"""

from repro.experiments.testbed import Testbed, office_testbed
from repro.experiments.metrics import cdf, median, percentile, summarize

__all__ = [
    "Testbed",
    "office_testbed",
    "cdf",
    "median",
    "percentile",
    "summarize",
]
