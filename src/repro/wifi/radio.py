"""End-to-end generation of measured CSI for a simulated link.

This is the substitute for the Intel 5300 + 802.11 CSI Tool: given the
physical environment and two antennas, it produces the *measured* CSI
sweep that the estimator in :mod:`repro.core` consumes, applying every
impairment in the order a real receive chain does:

1. physical multipath channel at each subcarrier (Eqn. 7),
2. constant transmit/receive chain group delays,
3. packet detection delay — a phase ramp across *baseband* subcarrier
   offsets, zero at the center frequency (§5),
4. CFO phase: an unknown common phase per packet, equal and opposite in
   the forward and reverse directions, plus a residual-offset drift over
   the forward→reverse turnaround and per-packet jitter (§7),
5. the device constant κ on the reverse direction (§7, Eqn. 12),
6. receiver AWGN at the link-budget SNR,
7. optionally the Intel 5300 2.4 GHz phase quirk (phase mod π/2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.rf.channel import channel_at
from repro.rf.environment import Environment
from repro.rf.geometry import Point
from repro.rf.noise import LinkBudget, awgn
from repro.rf.paths import PathSet
from repro.wifi.bands import Band, BandPlan, US_BAND_PLAN
from repro.wifi.csi import BandCsi, CsiSweep, LinkCsi
from repro.wifi.hardware import (
    DetectionDelayModel,
    DeviceState,
    HardwareProfile,
    INTEL_5300,
    apply_phase_quirk,
)
from repro.wifi.ofdm import (
    INTEL5300_SUBCARRIERS_20MHZ,
    baseband_offsets,
    subcarrier_frequencies,
)

if TYPE_CHECKING:
    # Type-only: a runtime import of repro.core here would cycle back
    # through repro.core.__init__ -> pipeline -> this module.
    from repro.core.typing import ComplexCSI, FrequencyVector

DEFAULT_TURNAROUND_MEAN_S = 25e-6
"""Mean packet→ACK turnaround (driver-injected ACKs, §11)."""

DEFAULT_TURNAROUND_JITTER_S = 8e-6
"""Turnaround jitter; drives the residual-CFO phase error of §7."""

MIN_TURNAROUND_S = 10e-6
"""A turnaround can never beat SIFS plus the ACK airtime."""


@dataclass
class SimulatedLink:
    """A tx-antenna → rx-antenna link inside an environment.

    Generates :class:`~repro.wifi.csi.CsiSweep` objects — the measured,
    impaired CSI in both directions on every band of the plan.

    Args:
        environment: The physical world (walls, reflections).
        tx_position: Transmit antenna location, meters.
        rx_position: Receive antenna location, meters.
        tx_state: Sampled hardware constants of the transmitting card.
        rx_state: Sampled hardware constants of the receiving card.
        band_plan: Bands to sweep; the paper's 35-band US plan by default.
        budget: Link budget mapping range to SNR.
        rng: Random generator (callers own the seed).
        subcarriers: Reported subcarrier indices (Intel 5300 set).
    """

    environment: Environment
    tx_position: Point
    rx_position: Point
    tx_state: DeviceState
    rx_state: DeviceState
    band_plan: BandPlan = US_BAND_PLAN
    budget: LinkBudget = field(default_factory=LinkBudget)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    subcarriers: tuple[int, ...] = INTEL5300_SUBCARRIERS_20MHZ

    def __post_init__(self) -> None:
        self._paths: PathSet = self.environment.trace(self.tx_position, self.rx_position)
        self._los = self.environment.has_line_of_sight(self.tx_position, self.rx_position)
        self._snr_db = self.budget.snr_db(
            self.tx_position.distance_to(self.rx_position), self._los
        )
        # κ for this link: the product of both devices' chain constants.
        self._kappa = self.tx_state.kappa * self.rx_state.kappa

    @property
    def paths(self) -> PathSet:
        """Ground-truth propagation paths of this link."""
        return self._paths

    @property
    def true_tof_s(self) -> float:
        """Ground-truth time-of-flight (direct-path delay)."""
        return self._paths.true_tof_s

    @property
    def true_distance_m(self) -> float:
        """Ground-truth antenna separation in meters."""
        return self.tx_position.distance_to(self.rx_position)

    @property
    def line_of_sight(self) -> bool:
        """Whether the direct path is unobstructed."""
        return self._los

    @property
    def snr_db(self) -> float:
        """Link SNR from the budget (used for every band)."""
        return self._snr_db

    @property
    def kappa(self) -> complex:
        """The link's §7 constant κ — known here for calibration tests."""
        return self._kappa

    def sweep(self, n_packets_per_band: int = 3, start_time_s: float = 0.0) -> CsiSweep:
        """Hop across the plan and measure CSI in both directions.

        Args:
            n_packets_per_band: Packet/ACK exchanges per band dwell; the
                estimator averages them to suppress residual-CFO error.
            start_time_s: Timestamp of the first packet.

        Returns:
            One :class:`CsiSweep` containing
            ``len(band_plan) * n_packets_per_band`` forward/reverse pairs.
        """
        if n_packets_per_band < 1:
            raise ValueError(f"need at least 1 packet per band, got {n_packets_per_band}")
        measurements: list[LinkCsi] = []
        t = start_time_s
        for band in self.band_plan:
            measurements.extend(self.measure_band(band, n_packets_per_band, t))
            t += 2.4e-3  # nominal per-band dwell (35 bands -> 84 ms, §12.3)
        return CsiSweep(measurements)

    def measure_band(
        self, band: Band, n_packets: int = 1, start_time_s: float = 0.0
    ) -> list[LinkCsi]:
        """Measure ``n_packets`` forward/reverse CSI pairs on one band."""
        freqs = subcarrier_frequencies(band.center_hz, self.subcarriers)
        offsets = baseband_offsets(self.subcarriers)
        h_true = channel_at(self._paths, freqs)
        fom = self.tx_state.profile.frequency_offset
        # Residual CFO after per-packet preamble correction: redrawn per
        # band visit (each retune re-acquires).
        residual_hz = fom.sample_residual_hz(self.rng)
        pairs: list[LinkCsi] = []
        t = start_time_s
        for _ in range(n_packets):
            turnaround = max(
                MIN_TURNAROUND_S,
                self.rng.normal(DEFAULT_TURNAROUND_MEAN_S, DEFAULT_TURNAROUND_JITTER_S),
            )
            # Unknown LO phase difference at the forward packet's arrival.
            lo_phase = self.rng.uniform(-math.pi, math.pi)
            fwd = self._measure_one(
                band=band,
                freqs=freqs,
                offsets=offsets,
                h_true=h_true,
                chain_delay_s=self.tx_state.tx_chain_delay_s + self.rx_state.rx_chain_delay_s,
                chain_ripple_rad=(
                    self.tx_state.tx_ripple_rad(band.channel)
                    + self.rx_state.rx_ripple_rad(band.channel)
                ),
                delay_model=self.rx_state.profile.detection_delay,
                cfo_phase_rad=lo_phase + fom.sample_jitter_rad(self.rng),
                kappa=1.0 + 0.0j,
                timestamp_s=t,
            )
            rev_phase = -(lo_phase + 2.0 * math.pi * residual_hz * turnaround)
            rev = self._measure_one(
                band=band,
                freqs=freqs,
                offsets=offsets,
                h_true=h_true,
                chain_delay_s=self.rx_state.tx_chain_delay_s + self.tx_state.rx_chain_delay_s,
                chain_ripple_rad=(
                    self.rx_state.tx_ripple_rad(band.channel)
                    + self.tx_state.rx_ripple_rad(band.channel)
                ),
                delay_model=self.tx_state.profile.detection_delay,
                cfo_phase_rad=rev_phase + fom.sample_jitter_rad(self.rng),
                kappa=self._kappa,
                timestamp_s=t + turnaround,
            )
            pairs.append(LinkCsi(forward=fwd, reverse=rev))
            t += 400e-6  # inter-packet gap within the dwell
        return pairs

    def _measure_one(
        self,
        band: Band,
        freqs: FrequencyVector,
        offsets: FrequencyVector,
        h_true: ComplexCSI,
        chain_delay_s: float,
        chain_ripple_rad: float,
        delay_model: DetectionDelayModel,
        cfo_phase_rad: float,
        kappa: complex,
        timestamp_s: float,
    ) -> BandCsi:
        """One direction's measured CSI for one packet."""
        csi = h_true * np.exp(-2.0j * np.pi * freqs * chain_delay_s)
        delta = delay_model.sample(self.rng)
        csi = csi * np.exp(-2.0j * np.pi * offsets * delta)
        csi = csi * kappa * np.exp(1j * (cfo_phase_rad + chain_ripple_rad))
        csi = awgn(csi, self._snr_db, self.rng)
        quirked = (
            band.is_2g4
            and self.tx_state.profile.phase_quirk_2g4
            and self.rx_state.profile.phase_quirk_2g4
        )
        if quirked:
            csi = apply_phase_quirk(csi)
        return BandCsi(
            band=band, csi=csi, subcarriers=self.subcarriers, timestamp_s=timestamp_s
        )


def make_link(
    environment: Environment,
    tx_position: Point,
    rx_position: Point,
    profile: HardwareProfile = INTEL_5300,
    band_plan: BandPlan = US_BAND_PLAN,
    budget: LinkBudget | None = None,
    rng: np.random.Generator | None = None,
) -> SimulatedLink:
    """Convenience constructor sampling both device states from one profile."""
    rng = rng if rng is not None else np.random.default_rng(0)
    return SimulatedLink(
        environment=environment,
        tx_position=tx_position,
        rx_position=rx_position,
        tx_state=profile.sample_device_state(rng),
        rx_state=profile.sample_device_state(rng),
        band_plan=band_plan,
        budget=budget or LinkBudget(),
        rng=rng,
    )


def measure_band(link: SimulatedLink, band: Band, n_packets: int = 1) -> list[LinkCsi]:
    """Module-level alias of :meth:`SimulatedLink.measure_band`."""
    return link.measure_band(band, n_packets)


def measure_sweep(link: SimulatedLink, n_packets_per_band: int = 3) -> CsiSweep:
    """Module-level alias of :meth:`SimulatedLink.sweep`."""
    return link.sweep(n_packets_per_band)
