"""The US Wi-Fi band plan that Chronos sweeps (paper Fig. 2 and §5).

The paper counts **35 bands with independent center frequencies** in the
US at 2.4 GHz and 5 GHz (including the DFS bands that 802.11h-capable
radios such as the Intel 5300 support):

* 2.4 GHz: channels 1–11, centers 2412–2462 MHz in 5 MHz steps (11 bands);
* 5 GHz UNII-1/2: channels 36–64 in steps of 4, centers 5180–5320 MHz (8);
* 5 GHz UNII-2e (DFS): channels 100–140, centers 5500–5700 MHz (11);
* 5 GHz UNII-3: channels 149–165, centers 5745–5825 MHz (5).

All centers sit on a 5 MHz grid, which is why time-of-flight recovered
from their phases is unique modulo 1/(5 MHz) = 200 ns (~60 m) — the
paper's §4 unambiguity claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.core.typing import FrequencyVector

FREQUENCY_GRID_HZ = 5e6
"""Greatest common divisor of all US Wi-Fi center frequencies."""

DEFAULT_BANDWIDTH_HZ = 20e6
"""Channel bandwidth used throughout (802.11n HT20)."""


@dataclass(frozen=True)
class Band:
    """One Wi-Fi frequency band (a 20 MHz channel).

    Attributes:
        channel: 802.11 channel number (1–11 at 2.4 GHz, 36–165 at 5 GHz).
        center_hz: Center (zero-subcarrier) frequency in Hz.
        bandwidth_hz: Occupied bandwidth in Hz.
        dfs: True for radar-protected (DFS) channels.
    """

    channel: int
    center_hz: float
    bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ
    dfs: bool = False

    def __post_init__(self) -> None:
        if self.center_hz <= 0:
            raise ValueError(f"center frequency must be positive, got {self.center_hz}")
        if self.bandwidth_hz <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_hz}")

    @property
    def is_2g4(self) -> bool:
        """True for the 2.4 GHz ISM band."""
        return self.center_hz < 3e9

    @property
    def is_5g(self) -> bool:
        """True for the 5 GHz UNII bands."""
        return self.center_hz >= 3e9

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength in meters."""
        from repro.rf.constants import SPEED_OF_LIGHT

        return SPEED_OF_LIGHT / self.center_hz

    def __repr__(self) -> str:
        return f"Band(ch{self.channel}, {self.center_hz / 1e6:.0f} MHz)"


class BandPlan:
    """An ordered collection of bands a device can hop across."""

    def __init__(self, bands: Sequence[Band]):
        if not bands:
            raise ValueError("a BandPlan needs at least one band")
        ordered = sorted(bands, key=lambda b: b.center_hz)
        centers = [b.center_hz for b in ordered]
        if len(set(centers)) != len(centers):
            raise ValueError("duplicate center frequencies in band plan")
        self.bands: tuple[Band, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self.bands)

    def __iter__(self) -> Iterator[Band]:
        return iter(self.bands)

    def __getitem__(self, idx: int) -> Band:
        return self.bands[idx]

    def __repr__(self) -> str:
        lo = self.bands[0].center_hz / 1e9
        hi = self.bands[-1].center_hz / 1e9
        return f"BandPlan(n={len(self)}, {lo:.3f}-{hi:.3f} GHz)"

    @property
    def center_frequencies_hz(self) -> FrequencyVector:
        """All center frequencies, ascending: ``(n_bands,)`` float64 Hz."""
        return np.array([b.center_hz for b in self.bands])

    @property
    def total_span_hz(self) -> float:
        """Frequency span from lowest to highest center."""
        return self.bands[-1].center_hz - self.bands[0].center_hz

    def frequency_grid_hz(self) -> float:
        """GCD of the center frequencies (Hz).

        Determines the unambiguous delay window: profiles computed from
        these centers repeat with period ``1 / grid``.
        """
        centers_khz = np.round(self.center_frequencies_hz / 1e3).astype(np.int64)
        gcd_khz = np.gcd.reduce(centers_khz)
        return float(gcd_khz) * 1e3

    def unambiguous_delay_s(self) -> float:
        """Largest delay resolvable without aliasing (the CRT/LCM window).

        For the US plan this is 1/(5 MHz) = 200 ns, i.e. ~60 m — the
        paper's §4 number.
        """
        return 1.0 / self.frequency_grid_hz()

    def native_resolution_s(self) -> float:
        """Fourier-limited delay resolution ``1 / span`` (no sparsity).

        Chronos beats this via sparse recovery, but it sets the scale of
        the stitched-bandwidth gain versus a single 20/40 MHz channel.
        """
        return 1.0 / self.total_span_hz

    def subset_2g4(self) -> "BandPlan":
        """Only the 2.4 GHz bands."""
        return BandPlan([b for b in self.bands if b.is_2g4])

    def subset_5g(self) -> "BandPlan":
        """Only the 5 GHz bands."""
        return BandPlan([b for b in self.bands if b.is_5g])

    def without_dfs(self) -> "BandPlan":
        """The plan with DFS (radar-protected) channels removed."""
        kept = [b for b in self.bands if not b.dfs]
        return BandPlan(kept)

    def decimate(self, keep_every: int) -> "BandPlan":
        """Every ``keep_every``-th band — used by the band-count ablation."""
        if keep_every < 1:
            raise ValueError(f"keep_every must be >= 1, got {keep_every}")
        return BandPlan(self.bands[::keep_every])


def band_plan_2g4() -> BandPlan:
    """US 2.4 GHz channels 1–11 (2412–2462 MHz)."""
    return BandPlan(
        [Band(ch, (2412 + 5 * (ch - 1)) * 1e6) for ch in range(1, 12)]
    )


def band_plan_5g(include_dfs: bool = True) -> BandPlan:
    """US 5 GHz channels (UNII-1/2, optional DFS UNII-2e, UNII-3)."""
    channels: list[tuple[int, bool]] = [(ch, False) for ch in range(36, 65, 4)]
    if include_dfs:
        channels += [(ch, True) for ch in range(100, 141, 4)]
    channels += [(ch, False) for ch in range(149, 166, 4)]
    return BandPlan([Band(ch, (5000 + 5 * ch) * 1e6, dfs=dfs) for ch, dfs in channels])


def _us_band_plan() -> BandPlan:
    both = list(band_plan_2g4()) + list(band_plan_5g(include_dfs=True))
    plan = BandPlan(both)
    assert len(plan) == 35, f"US plan must have 35 bands, got {len(plan)}"
    return plan


US_BAND_PLAN = _us_band_plan()
"""The 35-band US plan the paper sweeps (Fig. 2)."""
