"""Hardware impairment models for commodity Wi-Fi cards.

Everything Chronos must undo lives here:

* **Packet detection delay** (§5): energy detection in baseband adds a
  per-packet delay ``delta`` that is an order of magnitude larger than
  time-of-flight.  The paper measures a median of 177 ns with a standard
  deviation of 24.76 ns on the Intel 5300 (§12.1, Fig. 7c); our default
  model reproduces those statistics with a truncated Gaussian.
* **Carrier frequency offset** (§7): each card runs its own oscillator.
  Cards correct the bulk CFO per packet from the preamble, but an unknown
  LO phase and a small residual offset survive and differ per packet.
  The reciprocity product of forward/reverse CSI cancels the
  anti-symmetric part; what remains is the residual-CFO-times-turnaround
  error the paper's §7 observation (1) describes.
* **Device constant κ and chain delays** (§7): transmit/receive chains
  contribute a constant complex factor and a constant group delay; both
  are location-independent and calibratable.
* **2.4 GHz phase quirk** (§11, footnote 5): the Intel 5300 firmware
  reports 2.4 GHz CSI phase modulo π/2; the workaround raises the channel
  to the 4th power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.core.typing import ComplexCSI


@dataclass(frozen=True)
class DetectionDelayModel:
    """Truncated-Gaussian packet detection delay.

    Attributes:
        mean_s: Mean delay (paper: 177 ns median on the Intel 5300).
        std_s: Standard deviation (paper: 24.76 ns).
        min_s: Physical lower bound — a packet cannot be detected before
            enough preamble samples have accumulated.
    """

    mean_s: float = 177e-9
    std_s: float = 24.76e-9
    min_s: float = 90e-9

    def __post_init__(self) -> None:
        if self.mean_s < 0 or self.std_s < 0 or self.min_s < 0:
            raise ValueError("detection delay parameters must be non-negative")
        if self.min_s > self.mean_s:
            raise ValueError(
                f"min delay {self.min_s} exceeds mean {self.mean_s}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one per-packet detection delay in seconds."""
        delay = rng.normal(self.mean_s, self.std_s)
        while delay < self.min_s:
            delay = rng.normal(self.mean_s, self.std_s)
        return float(delay)


@dataclass(frozen=True)
class FrequencyOffsetModel:
    """Residual CFO and per-packet phase behaviour after preamble correction.

    Attributes:
        oscillator_ppm: Oscillator tolerance; sets the *raw* CFO scale
            (802.11 mandates ±20 ppm).  Raw CFO is corrected per packet
            by the card; it is retained here for documentation and for
            experiments that disable the correction.
        residual_sigma_hz: Std-dev of the post-correction residual offset.
        phase_jitter_rad: Per-measurement phase estimation noise that does
            *not* cancel in the reciprocity product.
    """

    oscillator_ppm: float = 20.0
    residual_sigma_hz: float = 150.0
    phase_jitter_rad: float = 0.02

    def __post_init__(self) -> None:
        if self.oscillator_ppm < 0 or self.residual_sigma_hz < 0:
            raise ValueError("offset parameters must be non-negative")
        if self.phase_jitter_rad < 0:
            raise ValueError("phase jitter must be non-negative")

    def sample_lo_ppm(self, rng: np.random.Generator) -> float:
        """Draw a device oscillator error in parts-per-million."""
        return float(rng.uniform(-self.oscillator_ppm, self.oscillator_ppm))

    def sample_residual_hz(self, rng: np.random.Generator) -> float:
        """Draw a per-band-visit residual CFO after preamble correction."""
        return float(rng.normal(0.0, self.residual_sigma_hz))

    def sample_jitter_rad(self, rng: np.random.Generator) -> float:
        """Draw one measurement's phase-estimation jitter."""
        return float(rng.normal(0.0, self.phase_jitter_rad))


@dataclass(frozen=True)
class HardwareProfile:
    """A card model: impairment distributions shared by devices of a type.

    Per-device constants (chain delay, κ, oscillator error) are *drawn*
    from this profile via :meth:`sample_device_state`.
    """

    name: str
    detection_delay: DetectionDelayModel = field(default_factory=DetectionDelayModel)
    frequency_offset: FrequencyOffsetModel = field(default_factory=FrequencyOffsetModel)
    chain_delay_mean_s: float = 8e-9
    chain_delay_std_s: float = 2e-9
    chain_ripple_rad: float = 0.1
    kappa_phase_uniform: bool = True
    phase_quirk_2g4: bool = False

    def sample_device_state(self, rng: np.random.Generator) -> "DeviceState":
        """Draw the per-device constants for one physical card."""
        tx_delay = max(0.0, rng.normal(self.chain_delay_mean_s, self.chain_delay_std_s))
        rx_delay = max(0.0, rng.normal(self.chain_delay_mean_s, self.chain_delay_std_s))
        if self.kappa_phase_uniform:
            kappa_mag = float(np.exp(rng.normal(0.0, 0.1)))
            kappa_phase = float(rng.uniform(-math.pi, math.pi))
        else:
            # Idealized chains: κ is exactly unity.
            kappa_mag, kappa_phase = 1.0, 0.0
        return DeviceState(
            profile=self,
            tx_chain_delay_s=float(tx_delay),
            rx_chain_delay_s=float(rx_delay),
            kappa=kappa_mag * complex(math.cos(kappa_phase), math.sin(kappa_phase)),
            lo_ppm=self.frequency_offset.sample_lo_ppm(rng),
            tx_ripple_seed=int(rng.integers(0, 2**20)),
            rx_ripple_seed=int(rng.integers(0, 2**20)),
        )


@dataclass(frozen=True)
class DeviceState:
    """Sampled constants of one physical card.

    Attributes:
        profile: The card model this device was drawn from.
        tx_chain_delay_s: Constant group delay of the transmit chain.
        rx_chain_delay_s: Constant group delay of the receive chain.
        kappa: The §7 constant complex factor of this device's chains.
        lo_ppm: This device's oscillator error in ppm.
    """

    profile: HardwareProfile
    tx_chain_delay_s: float
    rx_chain_delay_s: float
    kappa: complex
    lo_ppm: float
    tx_ripple_seed: int = 0
    rx_ripple_seed: int = 0

    @property
    def round_trip_chain_delay_s(self) -> float:
        """tx + rx chain delay — the constant ToF bias this device adds."""
        return self.tx_chain_delay_s + self.rx_chain_delay_s

    def tx_ripple_rad(self, channel: int) -> float:
        """Per-band transmit-chain phase ripple (fixed for this device)."""
        return chain_ripple_phase(
            self.tx_ripple_seed, channel, self.profile.chain_ripple_rad
        )

    def rx_ripple_rad(self, channel: int) -> float:
        """Per-band receive-chain phase ripple (fixed for this device)."""
        return chain_ripple_phase(
            self.rx_ripple_seed, channel, self.profile.chain_ripple_rad
        )


def chain_ripple_phase(seed: int, channel: int, sigma_rad: float) -> float:
    """Deterministic per-(device-chain, band) phase deviation.

    Real front-ends are not flat across 2.4–5.8 GHz: filters, matching
    networks and antennas add a frequency-dependent phase on top of the
    constant group delay.  A scalar ToF-bias calibration cannot remove
    this ripple, which is why it sets part of the real system's error
    floor.  The value is a fixed property of the hardware, so it is
    derived deterministically from the chain's seed and the channel.
    """
    if sigma_rad == 0.0:
        return 0.0
    rng = np.random.default_rng(((seed & 0xFFFFF) << 16) + (channel & 0xFFFF))
    return float(rng.normal(0.0, sigma_rad))


def apply_phase_quirk(csi: ComplexCSI) -> ComplexCSI:
    """Apply the Intel 5300 2.4 GHz firmware quirk: phase modulo π/2.

    Magnitude is preserved; the reported phase is the true phase wrapped
    into [0, π/2).  The workaround (see §11 footnote 5) is to use the 4th
    power of the reported CSI, since ``4 * (θ mod π/2) ≡ 4θ (mod 2π)``.
    """
    csi = np.asarray(csi, dtype=complex)
    mags = np.abs(csi)
    phases = np.mod(np.angle(csi), math.pi / 2.0)
    return mags * np.exp(1j * phases)


IDEAL_HARDWARE = HardwareProfile(
    name="ideal",
    detection_delay=DetectionDelayModel(mean_s=0.0, std_s=0.0, min_s=0.0),
    frequency_offset=FrequencyOffsetModel(
        oscillator_ppm=0.0, residual_sigma_hz=0.0, phase_jitter_rad=0.0
    ),
    chain_delay_mean_s=0.0,
    chain_delay_std_s=0.0,
    chain_ripple_rad=0.0,
    kappa_phase_uniform=False,
    phase_quirk_2g4=False,
)
"""A fictional perfect card: no delay, no CFO, κ = 1.  For unit tests."""

INTEL_5300 = HardwareProfile(
    name="intel5300",
    detection_delay=DetectionDelayModel(mean_s=177e-9, std_s=24.76e-9, min_s=90e-9),
    frequency_offset=FrequencyOffsetModel(
        oscillator_ppm=20.0, residual_sigma_hz=150.0, phase_jitter_rad=0.02
    ),
    chain_delay_mean_s=8e-9,
    chain_delay_std_s=2e-9,
    chain_ripple_rad=0.1,
    kappa_phase_uniform=True,
    phase_quirk_2g4=True,
)
"""The card the paper uses, with its documented quirks."""
