"""802.11n substrate: band plan, OFDM grid, CSI containers, hardware models.

This package turns the physical channels of :mod:`repro.rf` into the
*measured* channel state information (CSI) a commodity card reports —
including every impairment the paper has to fight: packet detection
delay (§5), carrier frequency offset and per-packet LO phase (§7), the
device constant κ, receiver noise, and the Intel 5300's 2.4 GHz
phase-quirk (§11, footnote 5).
"""

from repro.wifi.bands import (
    Band,
    BandPlan,
    US_BAND_PLAN,
    band_plan_2g4,
    band_plan_5g,
)
from repro.wifi.ofdm import (
    SUBCARRIER_SPACING_HZ,
    INTEL5300_SUBCARRIERS_20MHZ,
    subcarrier_frequencies,
)
from repro.wifi.csi import BandCsi, CsiSweep, LinkCsi
from repro.wifi.hardware import (
    DetectionDelayModel,
    FrequencyOffsetModel,
    HardwareProfile,
    IDEAL_HARDWARE,
    INTEL_5300,
)
from repro.wifi.radio import SimulatedLink, measure_band, measure_sweep

__all__ = [
    "Band",
    "BandPlan",
    "US_BAND_PLAN",
    "band_plan_2g4",
    "band_plan_5g",
    "SUBCARRIER_SPACING_HZ",
    "INTEL5300_SUBCARRIERS_20MHZ",
    "subcarrier_frequencies",
    "BandCsi",
    "CsiSweep",
    "LinkCsi",
    "DetectionDelayModel",
    "FrequencyOffsetModel",
    "HardwareProfile",
    "IDEAL_HARDWARE",
    "INTEL_5300",
    "SimulatedLink",
    "measure_band",
    "measure_sweep",
]
