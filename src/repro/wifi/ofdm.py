"""OFDM subcarrier layout for 802.11n HT20 and the Intel 5300 CSI grid.

802.11n (20 MHz) uses a 64-point FFT with 312.5 kHz subcarrier spacing;
56 subcarriers (±1..±28) carry data/pilots and subcarrier 0 (DC) is
unused — which is exactly why the paper must *interpolate* the channel at
subcarrier 0 rather than measure it (§5).

The Intel 5300's CSI report (the 802.11 CSI Tool the paper uses) returns
CSI on a fixed subset of 30 of those 56 subcarriers, defined by the
802.11n-2009 "grouping" (Ng=2) rule.  We reproduce that exact index set
so the interpolation code faces the same gaps as on real hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.core.typing import FrequencyVector

SUBCARRIER_SPACING_HZ = 312_500.0
"""802.11n subcarrier spacing: 20 MHz / 64."""

FFT_SIZE_20MHZ = 64
"""HT20 FFT size."""

DATA_SUBCARRIERS_20MHZ = tuple(k for k in range(-28, 29) if k != 0)
"""The 56 populated subcarrier indices for HT20 (DC excluded)."""

INTEL5300_SUBCARRIERS_20MHZ = (
    -28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
    1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 28,
)
"""The 30 subcarrier indices the Intel 5300 reports CSI for (Ng=2 grouping)."""


def subcarrier_frequencies(
    center_hz: float, indices: tuple[int, ...] = INTEL5300_SUBCARRIERS_20MHZ
) -> FrequencyVector:
    """Absolute RF frequency of each subcarrier in a band.

    Args:
        center_hz: The band's center (zero-subcarrier) frequency.
        indices: Subcarrier indices; defaults to the Intel 5300 set.

    Returns:
        Array of ``center_hz + k * 312.5 kHz`` for each index ``k``.
    """
    if center_hz <= 0:
        raise ValueError(f"center frequency must be positive, got {center_hz}")
    idx = np.asarray(indices, dtype=float)
    return center_hz + idx * SUBCARRIER_SPACING_HZ


def baseband_offsets(indices: tuple[int, ...] = INTEL5300_SUBCARRIERS_20MHZ) -> FrequencyVector:
    """Baseband frequency offsets ``f_{i,k} - f_{i,0}`` of each subcarrier.

    These are the frequencies that packet-detection delay rotates CSI by
    (§5 of the paper): the delay phase at subcarrier k is
    ``-2*pi*(f_k - f_0)*delta`` and vanishes at k = 0.
    """
    return np.asarray(indices, dtype=float) * SUBCARRIER_SPACING_HZ


def validate_indices(indices: tuple[int, ...]) -> None:
    """Raise ``ValueError`` if ``indices`` is not a sane CSI subcarrier set."""
    if len(indices) < 4:
        raise ValueError(f"need at least 4 subcarriers to interpolate, got {len(indices)}")
    if len(set(indices)) != len(indices):
        raise ValueError("subcarrier indices contain duplicates")
    if 0 in indices:
        raise ValueError("subcarrier 0 (DC) is never measured on real hardware")
    if list(indices) != sorted(indices):
        raise ValueError("subcarrier indices must be ascending")
    if min(indices) > 0 or max(indices) < 0:
        raise ValueError("subcarrier set must straddle DC for interpolation at 0")
