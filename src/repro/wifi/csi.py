"""Containers for channel state information (CSI) measurements.

Chronos's estimator consumes a *sweep*: for each of the 35 bands, the
CSI measured in both directions (receiver measures the transmitter's
packet; transmitter measures the receiver's ACK — §7 uses the pair to
cancel frequency offsets).  These containers keep that structure explicit
and carry the metadata (band, subcarrier indices, timestamps) that the
algorithms need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from repro.wifi.bands import Band
from repro.wifi.ofdm import INTEL5300_SUBCARRIERS_20MHZ, subcarrier_frequencies

if TYPE_CHECKING:
    # Type-only: a runtime import of repro.core here would cycle back
    # through repro.core.__init__ -> pipeline -> wifi.radio -> this module.
    from repro.core.typing import ComplexCSI, FloatVector, FrequencyVector


@dataclass(frozen=True)
class BandCsi:
    """CSI for one packet on one band in one direction.

    Attributes:
        band: The Wi-Fi band the packet was received on.
        csi: Complex CSI per reported subcarrier.
        subcarriers: The subcarrier indices (Intel 5300 set by default).
        timestamp_s: Receive time — forward/reverse pairs are microseconds
            apart, and the residual CFO error grows with that separation.
    """

    band: Band
    csi: ComplexCSI
    subcarriers: tuple[int, ...] = INTEL5300_SUBCARRIERS_20MHZ
    timestamp_s: float = 0.0

    def __post_init__(self) -> None:
        csi = np.asarray(self.csi)
        if csi.ndim != 1:
            raise ValueError(f"CSI must be 1-D, got shape {csi.shape}")
        if len(csi) != len(self.subcarriers):
            raise ValueError(
                f"CSI has {len(csi)} entries but {len(self.subcarriers)} "
                "subcarrier indices"
            )
        # Pin the dtype at the measurement boundary: downstream NDFT /
        # reciprocity math assumes complex128, and a complex64 sweep
        # (e.g. parsed from a packed capture) would silently halve the
        # phase precision of every profile computed from it.
        object.__setattr__(self, "csi", csi.astype(np.complex128))

    @property
    def frequencies_hz(self) -> FrequencyVector:
        """Absolute RF frequency of each CSI entry."""
        return subcarrier_frequencies(self.band.center_hz, self.subcarriers)

    @property
    def magnitudes(self) -> FloatVector:
        """Per-subcarrier CSI magnitude."""
        return np.abs(self.csi)

    @property
    def phases(self) -> FloatVector:
        """Per-subcarrier CSI phase, wrapped to (-pi, pi]."""
        return np.angle(self.csi)


@dataclass(frozen=True)
class LinkCsi:
    """The forward/reverse CSI pair for one band (§7's ingredients).

    ``forward`` is measured at the receiver from the transmitter's packet;
    ``reverse`` is measured at the transmitter from the receiver's ACK.
    """

    forward: BandCsi
    reverse: BandCsi

    def __post_init__(self) -> None:
        if self.forward.band.center_hz != self.reverse.band.center_hz:
            raise ValueError(
                "forward and reverse CSI must be on the same band, got "
                f"{self.forward.band} and {self.reverse.band}"
            )

    @property
    def band(self) -> Band:
        """The band both measurements share."""
        return self.forward.band

    @property
    def turnaround_s(self) -> float:
        """Time between the forward and reverse measurements."""
        return abs(self.reverse.timestamp_s - self.forward.timestamp_s)


class CsiSweep:
    """A full hop across the band plan.

    This is the unit of input to the time-of-flight estimator — the
    paper's sweep takes 84 ms and yields 35 forward/reverse pairs.  A
    band may appear more than once when several packets were exchanged
    during its dwell; the estimator averages those (§7, observation 1).
    """

    def __init__(self, measurements: Sequence[LinkCsi]):
        if not measurements:
            raise ValueError("a CsiSweep needs at least one band measurement")
        ordered = sorted(
            measurements, key=lambda m: (m.band.center_hz, m.forward.timestamp_s)
        )
        self._measurements: tuple[LinkCsi, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self._measurements)

    def __iter__(self) -> Iterator[LinkCsi]:
        return iter(self._measurements)

    def __getitem__(self, idx: int) -> LinkCsi:
        return self._measurements[idx]

    def __repr__(self) -> str:
        return f"CsiSweep(n_bands={len(self)})"

    @property
    def bands(self) -> tuple[Band, ...]:
        """Unique bands present in the sweep, ascending in frequency."""
        seen: dict[float, Band] = {}
        for m in self._measurements:
            seen.setdefault(m.band.center_hz, m.band)
        return tuple(seen[c] for c in sorted(seen))

    @property
    def center_frequencies_hz(self) -> FrequencyVector:
        """Center frequency of every unique band in the sweep."""
        return np.array([b.center_hz for b in self.bands])

    def by_band(self) -> dict[float, list[LinkCsi]]:
        """Group measurements by band center frequency (ascending keys)."""
        groups: dict[float, list[LinkCsi]] = {}
        for m in self._measurements:
            groups.setdefault(m.band.center_hz, []).append(m)
        return {c: groups[c] for c in sorted(groups)}

    def subset(self, predicate: Callable[[Band], bool]) -> "CsiSweep":
        """A sweep containing only measurements whose band satisfies
        ``predicate(band) -> bool``."""
        kept = [m for m in self._measurements if predicate(m.band)]
        if not kept:
            raise ValueError("subset predicate removed every band")
        return CsiSweep(kept)

    def subset_2g4(self) -> "CsiSweep":
        """Only the 2.4 GHz measurements."""
        return self.subset(lambda b: b.is_2g4)

    def subset_5g(self) -> "CsiSweep":
        """Only the 5 GHz measurements."""
        return self.subset(lambda b: b.is_5g)
