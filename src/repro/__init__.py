"""repro — a reproduction of "Sub-Nanosecond Time of Flight on Commercial
Wi-Fi Cards" (Chronos; Vasisht, Kumar, Katabi).

The package is organized as the paper is:

* :mod:`repro.rf` — physics: geometry, image-method multipath, channels.
* :mod:`repro.wifi` — the 802.11n substrate: 35-band US plan, OFDM/CSI,
  hardware impairments (detection delay, CFO, κ, the 2.4 GHz quirk).
* :mod:`repro.core` — Chronos itself: CRT phase alignment (§4),
  zero-subcarrier interpolation (§5), sparse inverse NDFT (§6,
  Algorithm 1), CFO reciprocity cancellation (§7), localization (§8).
* :mod:`repro.baselines` — comparison methods (clock ToA, single-band
  phase, plain matched-filter NDFT, per-band MUSIC).
* :mod:`repro.mac` — the transmitter-driven channel-hopping protocol.
* :mod:`repro.net` — traffic-impact models (TCP, video streaming) and
  the batched request/response ranging service.
* :mod:`repro.stream` — the asyncio micro-batching front end and
  per-link ToF tracks for continuous workloads.
* :mod:`repro.loc` — fleet localization: batched position serving over
  the streaming layer, plus per-client position tracks.
* :mod:`repro.drone` — the personal-drone application (§9).
* :mod:`repro.experiments` — the testbed and one driver per paper figure.

Quickstart::

    import numpy as np
    from repro import ChronosDevice, ChronosPair, Point, triangle_array
    from repro.experiments.testbed import office_testbed

    rng = np.random.default_rng(7)
    env = office_testbed().environment
    user = ChronosDevice.create("user", Point(4, 5), rng)
    laptop = ChronosDevice.create(
        "laptop", Point(10, 9), rng, antenna_offsets=triangle_array(0.3)
    )
    pair = ChronosPair(env, receiver=laptop, transmitter=user, rng=rng)
    pair.calibrate()
    fix = pair.localize()
    print(fix.position, fix.error_m)
"""

from repro.core.cfo import LinkCalibration
from repro.core.localization import LocalizationResult, locate_transmitter
from repro.core.localization_batch import locate_transmitter_batch
from repro.core.pipeline import (
    ChronosDevice,
    ChronosPair,
    PairFix,
    linear_array,
    triangle_array,
)
from repro.core.profile import MultipathProfile
from repro.core.tof import TofEstimate, TofEstimator, TofEstimatorConfig
from repro.rf.constants import SPEED_OF_LIGHT, distance_to_tof, tof_to_distance
from repro.rf.environment import Environment, free_space, rectangular_room
from repro.rf.geometry import Point
from repro.rf.noise import LinkBudget
from repro.wifi.bands import US_BAND_PLAN, BandPlan
from repro.wifi.hardware import IDEAL_HARDWARE, INTEL_5300, HardwareProfile
from repro.wifi.radio import SimulatedLink, make_link

__version__ = "1.0.0"

__all__ = [
    "LinkCalibration",
    "LocalizationResult",
    "locate_transmitter",
    "locate_transmitter_batch",
    "ChronosDevice",
    "ChronosPair",
    "PairFix",
    "linear_array",
    "triangle_array",
    "MultipathProfile",
    "TofEstimate",
    "TofEstimator",
    "TofEstimatorConfig",
    "SPEED_OF_LIGHT",
    "distance_to_tof",
    "tof_to_distance",
    "Environment",
    "free_space",
    "rectangular_room",
    "Point",
    "LinkBudget",
    "US_BAND_PLAN",
    "BandPlan",
    "IDEAL_HARDWARE",
    "INTEL_5300",
    "HardwareProfile",
    "SimulatedLink",
    "make_link",
    "__version__",
]
