"""Propagation paths: the sparse physical objects behind multipath profiles.

A :class:`PropagationPath` is one term of the paper's Eqn. 7 — an
amplitude ``a_k`` and a delay ``tau_k``.  A :class:`PathSet` is the whole
sum, sorted by delay so that ``paths[0]`` is the *direct* (shortest) path
whose delay is the time-of-flight Chronos is after.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.rf.constants import SPEED_OF_LIGHT

if TYPE_CHECKING:
    from repro.core.typing import DelayVector, FloatVector


@dataclass(frozen=True)
class PropagationPath:
    """One physical path from transmitter to receiver.

    Attributes:
        delay_s: Propagation delay in seconds (path length / c).
        amplitude: Linear field amplitude of the path (>= 0).
        bounces: Number of wall reflections along the path (0 = direct).
        through_walls: Number of walls the path passes through.
    """

    delay_s: float
    amplitude: float
    bounces: int = 0
    through_walls: int = 0

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay_s}")
        if self.amplitude < 0:
            raise ValueError(f"amplitude must be non-negative, got {self.amplitude}")

    @property
    def length_m(self) -> float:
        """Geometric path length in meters."""
        return self.delay_s * SPEED_OF_LIGHT

    @property
    def power(self) -> float:
        """Path power (amplitude squared)."""
        return self.amplitude**2

    def is_direct(self) -> bool:
        """True for the unobstructed-geometry path (no bounces)."""
        return self.bounces == 0


class PathSet:
    """An ordered collection of propagation paths between two antennas.

    Paths are kept sorted by increasing delay.  The set is immutable after
    construction; derived sets (pruned, scaled) are new objects.
    """

    def __init__(self, paths: Iterable[PropagationPath]):
        self._paths: tuple[PropagationPath, ...] = tuple(
            sorted(paths, key=lambda p: p.delay_s)
        )
        if not self._paths:
            raise ValueError("a PathSet needs at least one path")

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self) -> Iterator[PropagationPath]:
        return iter(self._paths)

    def __getitem__(self, idx: int) -> PropagationPath:
        return self._paths[idx]

    def __repr__(self) -> str:
        direct = self.direct_path
        return (
            f"PathSet(n={len(self)}, direct={direct.delay_s * 1e9:.2f} ns, "
            f"spread={self.delay_spread_s * 1e9:.2f} ns)"
        )

    @property
    def direct_path(self) -> PropagationPath:
        """The earliest-arriving path.  Its delay is the true time-of-flight."""
        return self._paths[0]

    @property
    def true_tof_s(self) -> float:
        """Ground-truth time-of-flight in seconds (delay of the first path)."""
        return self._paths[0].delay_s

    @property
    def delays_s(self) -> DelayVector:
        """All path delays, seconds, ascending: ``(n_paths,)`` float64."""
        return np.array([p.delay_s for p in self._paths])

    @property
    def amplitudes(self) -> FloatVector:
        """All path amplitudes, aligned with :attr:`delays_s`."""
        return np.array([p.amplitude for p in self._paths])

    @property
    def total_power(self) -> float:
        """Sum of per-path powers."""
        return float(np.sum(self.amplitudes**2))

    @property
    def delay_spread_s(self) -> float:
        """Difference between the last and first path delays, seconds."""
        return self._paths[-1].delay_s - self._paths[0].delay_s

    def dominant_paths(self, threshold_db: float = 20.0) -> "PathSet":
        """Paths within ``threshold_db`` of the strongest path's power.

        The paper's sparsity assumption (§6) is that a handful of paths
        dominate; this selects them.
        """
        amps = self.amplitudes
        cutoff = amps.max() * 10.0 ** (-threshold_db / 20.0)
        kept = [p for p in self._paths if p.amplitude >= cutoff]
        return PathSet(kept)

    def strongest(self, n: int) -> "PathSet":
        """The ``n`` highest-amplitude paths (delay order preserved)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        ranked = sorted(self._paths, key=lambda p: -p.amplitude)[:n]
        return PathSet(ranked)

    def scaled(self, factor: float) -> "PathSet":
        """A copy with every amplitude multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return PathSet(
            PropagationPath(p.delay_s, p.amplitude * factor, p.bounces, p.through_walls)
            for p in self._paths
        )

    def direct_path_is_dominant(self, threshold_db: float = 20.0) -> bool:
        """True when the direct path survives the dominance cut.

        When it does not, Chronos (like all first-peak methods) will lock
        onto a reflection and produce an outlier — the failure mode the
        paper acknowledges in §6.
        """
        return any(p.is_direct() for p in self.dominant_paths(threshold_db))


def two_ray(
    distance_m: float,
    excess_delay_s: float,
    reflection_amplitude: float = 0.5,
) -> PathSet:
    """A minimal direct-plus-reflection channel, useful in tests.

    Args:
        distance_m: Direct-path length.
        excess_delay_s: Extra delay of the reflected path over the direct.
        reflection_amplitude: Reflected amplitude relative to direct (=1).
    """
    if excess_delay_s <= 0:
        raise ValueError(f"excess delay must be positive, got {excess_delay_s}")
    direct_delay = distance_m / SPEED_OF_LIGHT
    return PathSet(
        [
            PropagationPath(direct_delay, 1.0, bounces=0),
            PropagationPath(
                direct_delay + excess_delay_s, reflection_amplitude, bounces=1
            ),
        ]
    )


def from_delays(
    delays_s: Sequence[float], amplitudes: Sequence[float]
) -> PathSet:
    """Build a :class:`PathSet` directly from delay/amplitude arrays.

    Used by benchmarks that replay the paper's worked examples (e.g. the
    5.2/10/16 ns triple of Fig. 4).
    """
    if len(delays_s) != len(amplitudes):
        raise ValueError(
            f"got {len(delays_s)} delays but {len(amplitudes)} amplitudes"
        )
    order = np.argsort(delays_s)
    return PathSet(
        PropagationPath(float(delays_s[i]), float(amplitudes[i]), bounces=int(i != order[0]))
        for i in order
    )
