"""Physical-layer substrate: geometry, multipath propagation and channels.

This package simulates the over-the-air part of the Chronos paper: an
indoor environment with reflecting walls, the image-method enumeration of
propagation paths, and the frequency-domain channel

    h(f) = sum_k a_k * exp(-j * 2 * pi * f * tau_k)

that the paper's Eqn. 1 and Eqn. 7 describe.  Everything downstream
(``repro.wifi``, ``repro.core``) consumes :class:`~repro.rf.paths.PathSet`
objects produced here.
"""

from repro.rf.constants import SPEED_OF_LIGHT, distance_to_tof, tof_to_distance
from repro.rf.geometry import Point, Segment, mirror_point, segments_intersect
from repro.rf.materials import Material, CONCRETE, DRYWALL, GLASS, METAL
from repro.rf.paths import PropagationPath, PathSet
from repro.rf.environment import Environment, Wall, free_space
from repro.rf.channel import channel_at, channel_matrix
from repro.rf.noise import (
    LinkBudget,
    awgn,
    noise_sigma_for_snr,
    snr_from_distance,
)

__all__ = [
    "SPEED_OF_LIGHT",
    "distance_to_tof",
    "tof_to_distance",
    "Point",
    "Segment",
    "mirror_point",
    "segments_intersect",
    "Material",
    "CONCRETE",
    "DRYWALL",
    "GLASS",
    "METAL",
    "PropagationPath",
    "PathSet",
    "Environment",
    "Wall",
    "free_space",
    "channel_at",
    "channel_matrix",
    "LinkBudget",
    "awgn",
    "noise_sigma_for_snr",
    "snr_from_distance",
]
