"""Noise and link-budget models.

Chronos's accuracy degrades with distance because SNR drops (the paper's
Fig. 8a attributes the growth in error at 12–15 m to "reduced
signal-to-noise ratio").  This module provides:

* a log-distance link budget mapping tx power and range to SNR, and
* complex AWGN generation for CSI measurements at a given SNR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.rf.constants import thermal_noise_power_dbm

if TYPE_CHECKING:
    from repro.core.typing import ComplexCSI


@dataclass(frozen=True)
class LinkBudget:
    """Log-distance link budget for indoor Wi-Fi.

    Attributes:
        tx_power_dbm: Transmit power (Intel 5300 defaults to ~15 dBm).
        path_loss_exponent: 2.0 in free space; ~2.5–3.5 indoors.
        reference_loss_db: Path loss at 1 m (~40 dB at 2.4 GHz, ~46 at 5 GHz).
        noise_figure_db: Receiver noise figure.
        bandwidth_hz: Noise bandwidth (one 20 MHz Wi-Fi band).
        nlos_penalty_db: Additional loss applied to NLOS links.
    """

    tx_power_dbm: float = 15.0
    path_loss_exponent: float = 2.7
    reference_loss_db: float = 43.0
    noise_figure_db: float = 6.0
    bandwidth_hz: float = 20e6
    nlos_penalty_db: float = 8.0

    def path_loss_db(self, distance_m: float) -> float:
        """Log-distance path loss at ``distance_m`` meters."""
        if distance_m <= 0:
            raise ValueError(f"distance must be positive, got {distance_m}")
        d = max(distance_m, 1.0)
        return self.reference_loss_db + 10.0 * self.path_loss_exponent * np.log10(d)

    def snr_db(self, distance_m: float, line_of_sight: bool = True) -> float:
        """Received SNR in dB at the given range."""
        noise_dbm = thermal_noise_power_dbm(self.bandwidth_hz, self.noise_figure_db)
        rx_dbm = self.tx_power_dbm - self.path_loss_db(distance_m)
        if not line_of_sight:
            rx_dbm -= self.nlos_penalty_db
        return rx_dbm - noise_dbm


def snr_from_distance(
    distance_m: float, line_of_sight: bool = True, budget: LinkBudget | None = None
) -> float:
    """SNR in dB for a link of ``distance_m`` meters under ``budget``."""
    return (budget or LinkBudget()).snr_db(distance_m, line_of_sight)


def noise_sigma_for_snr(snr_db: float, signal_power: float = 1.0) -> float:
    """Per-component std-dev of complex AWGN for a target SNR.

    The complex noise ``n = nr + j*ni`` has total power ``2*sigma**2``;
    solving ``signal_power / (2*sigma**2) = snr`` gives sigma.
    """
    snr_linear = 10.0 ** (snr_db / 10.0)
    if snr_linear <= 0:
        raise ValueError(f"SNR must correspond to positive power, got {snr_db} dB")
    return float(np.sqrt(signal_power / (2.0 * snr_linear)))


def awgn(
    values: ComplexCSI,
    snr_db: float,
    rng: np.random.Generator,
    reference_power: float | None = None,
) -> ComplexCSI:
    """Add complex white Gaussian noise to ``values`` at ``snr_db``.

    Args:
        values: Complex array (any shape) of noiseless measurements.
        snr_db: Target signal-to-noise ratio in dB.
        rng: Random generator — callers own seeding for reproducibility.
        reference_power: Signal power the SNR is relative to.  Defaults to
            the mean power of ``values`` so that weak (NLOS) channels get
            proportionally *more* noise relative to their structure, as a
            fixed-noise-floor receiver would experience.

    Returns:
        A new array; the input is not modified.
    """
    vals = np.asarray(values, dtype=complex)
    if reference_power is None:
        reference_power = float(np.mean(np.abs(vals) ** 2))
        if reference_power == 0.0:
            reference_power = 1.0
    sigma = noise_sigma_for_snr(snr_db, reference_power)
    noise = rng.normal(0.0, sigma, vals.shape) + 1j * rng.normal(0.0, sigma, vals.shape)
    return vals + noise
