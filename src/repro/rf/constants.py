"""Physical constants and unit helpers used across the reproduction.

The paper reasons in nanoseconds (time-of-flight), meters (distance) and
Hertz (carrier frequency).  All public APIs in this repository use SI base
units — seconds, meters, Hertz — and the helpers here convert between them.
"""

from __future__ import annotations

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum, m/s.  Indoor air is within 0.03 % of this."""

BOLTZMANN = 1.380_649e-23
"""Boltzmann constant, J/K, for thermal-noise floor computations."""

ROOM_TEMPERATURE_K = 290.0
"""Reference temperature for noise-figure math (IEEE convention)."""

NANOSECOND = 1e-9
"""One nanosecond in seconds; the paper's headline unit."""


def distance_to_tof(distance_m: float) -> float:
    """Return the one-way time-of-flight in seconds for ``distance_m`` meters.

    >>> round(distance_to_tof(0.6) / NANOSECOND, 2)  # the paper's Fig. 3 example
    2.0
    """
    if distance_m < 0:
        raise ValueError(f"distance must be non-negative, got {distance_m}")
    return distance_m / SPEED_OF_LIGHT


def tof_to_distance(tof_s: float) -> float:
    """Return the distance in meters traveled in ``tof_s`` seconds.

    >>> round(tof_to_distance(2e-9), 2)
    0.6
    """
    return tof_s * SPEED_OF_LIGHT


def db_to_linear(db: float) -> float:
    """Convert a power ratio from decibels to linear scale."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises ``ValueError`` for non-positive ratios, which have no dB
    representation.
    """
    if ratio <= 0:
        raise ValueError(f"power ratio must be positive, got {ratio}")
    import math

    return 10.0 * math.log10(ratio)


def amplitude_db_to_linear(db: float) -> float:
    """Convert an *amplitude* (field) gain in dB to linear scale.

    Amplitude uses a factor 20 instead of 10: a -6 dB amplitude gain halves
    the field strength and quarters the power.
    """
    return 10.0 ** (db / 20.0)


def thermal_noise_power_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power in dBm over ``bandwidth_hz`` at room temperature.

    ``noise_figure_db`` models receiver front-end degradation (the Intel
    5300 datasheet implies roughly 6 dB).

    >>> round(thermal_noise_power_dbm(20e6), 1)  # 20 MHz Wi-Fi band
    -101.0
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    import math

    noise_w = BOLTZMANN * ROOM_TEMPERATURE_K * bandwidth_hz
    return 10.0 * math.log10(noise_w * 1e3) + noise_figure_db
