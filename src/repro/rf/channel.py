"""Frequency-domain channel synthesis from propagation paths.

This is the forward model the whole paper rests on.  For a set of paths
with amplitudes ``a_k`` and delays ``tau_k``, the channel at frequency
``f`` is Eqn. 7 of the paper:

    h(f) = sum_k a_k * exp(-j * 2 * pi * f * tau_k)

``channel_at`` evaluates that sum on an arbitrary frequency grid — the
same math serves the 30 subcarriers inside one band and the 35 band
center-frequencies across the whole sweep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.rf.paths import PathSet

if TYPE_CHECKING:
    # Runtime import would cycle: repro.core.__init__'s import chain
    # re-enters this module via wifi.radio.  Annotations are strings
    # (``from __future__ import annotations``), so type-only is enough.
    from repro.core.typing import ComplexCSI, ComplexCSIStack, FrequencyVector


def channel_at(
    paths: PathSet, frequencies_hz: FrequencyVector | Sequence[float]
) -> ComplexCSI:
    """Evaluate the multipath channel on a frequency grid.

    Args:
        paths: The propagation paths between one antenna pair.
        frequencies_hz: Absolute RF frequencies to evaluate at (1-D).

    Returns:
        Complex channel values, one per frequency, ``dtype=complex128``.
    """
    freqs = np.asarray(frequencies_hz, dtype=float)
    if freqs.ndim != 1:
        raise ValueError(f"frequencies must be 1-D, got shape {freqs.shape}")
    delays = paths.delays_s[:, np.newaxis]
    amps = paths.amplitudes[:, np.newaxis]
    phases = -2.0j * np.pi * freqs[np.newaxis, :] * delays
    return np.sum(amps * np.exp(phases), axis=0)


def channel_matrix(
    path_sets: Sequence[PathSet], frequencies_hz: FrequencyVector | Sequence[float]
) -> ComplexCSIStack:
    """Stack :func:`channel_at` for several antenna pairs.

    Returns an array of shape ``(len(path_sets), len(frequencies_hz))``.
    """
    if not path_sets:
        raise ValueError("need at least one PathSet")
    return np.vstack([channel_at(p, frequencies_hz) for p in path_sets])


def single_path_phase(frequency_hz: float, tof_s: float) -> float:
    """Phase of a unit single-path channel: Eqn. 2 of the paper.

    Returns ``-2*pi*f*tau`` wrapped to (-pi, pi].
    """
    raw = -2.0 * np.pi * frequency_hz * tof_s
    return float(np.angle(np.exp(1j * raw)))
