"""Planar geometry primitives for the indoor ray tracer.

The testbed in the paper (Fig. 6) is a single floor, so propagation is
modeled in 2-D.  These primitives are deliberately small: points, line
segments, mirror reflections (for the image method) and segment
intersection tests (for wall-crossing / line-of-sight checks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

_EPS = 1e-12


@dataclass(frozen=True)
class Point:
    """A point (or free vector) in the plane, in meters."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Point") -> float:
        """Inner product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Point":
        """Unit vector in this direction.  Raises on the zero vector."""
        n = self.norm()
        if n < _EPS:
            raise ValueError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def rotated(self, angle_rad: float) -> "Point":
        """This vector rotated counter-clockwise by ``angle_rad``."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Point(c * self.x - s * self.y, s * self.x + c * self.y)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Segment:
    """A closed line segment between two points."""

    a: Point
    b: Point

    def length(self) -> float:
        """Segment length in meters."""
        return self.a.distance_to(self.b)

    def direction(self) -> Point:
        """Unit vector from ``a`` to ``b``."""
        return (self.b - self.a).normalized()

    def midpoint(self) -> Point:
        """The segment's midpoint."""
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def point_at(self, t: float) -> Point:
        """Affine interpolation: ``t=0`` gives ``a``, ``t=1`` gives ``b``."""
        return Point(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )

    def contains_point(self, p: Point, tol_m: float = 1e-9) -> bool:
        """True when ``p`` lies on the segment within ``tol_m`` meters."""
        ab = self.b - self.a
        ap = p - self.a
        if abs(ab.cross(ap)) > tol_m * max(ab.norm(), 1.0):
            return False
        t = ap.dot(ab) / max(ab.dot(ab), _EPS)
        return -tol_m <= t <= 1.0 + tol_m


def mirror_point(p: Point, wall: Segment) -> Point:
    """Reflect ``p`` across the infinite line through ``wall``.

    This is the core of the image method: the reflected path from a source
    ``p`` off ``wall`` to a receiver has the same length as the straight
    line from the mirror image of ``p`` to the receiver.
    """
    d = wall.b - wall.a
    denom = d.dot(d)
    if denom < _EPS:
        raise ValueError("wall segment is degenerate (zero length)")
    t = (p - wall.a).dot(d) / denom
    foot = wall.a + t * d
    return foot + (foot - p)


def segment_intersection(s1: Segment, s2: Segment) -> Optional[Point]:
    """Return the intersection point of two segments, or ``None``.

    Collinear overlapping segments return ``None`` (the ray tracer treats
    a ray grazing along a wall as not crossing it, which is the physically
    conservative choice).
    """
    p, r = s1.a, s1.b - s1.a
    q, s = s2.a, s2.b - s2.a
    denom = r.cross(s)
    if abs(denom) < _EPS:
        return None
    qp = q - p
    t = qp.cross(s) / denom
    u = qp.cross(r) / denom
    if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
        return s1.point_at(min(max(t, 0.0), 1.0))
    return None


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """True when the two segments share at least one non-collinear point."""
    return segment_intersection(s1, s2) is not None


def crossing_parameter(path: Segment, wall: Segment) -> Optional[float]:
    """Parameter ``t`` along ``path`` where it crosses ``wall``, else ``None``.

    Endpoint grazes (t very close to 0 or 1) are excluded so that a path
    *originating on* a wall — as reflected paths do — is not double-counted
    as crossing it.
    """
    p, r = path.a, path.b - path.a
    q, s = wall.a, wall.b - wall.a
    denom = r.cross(s)
    if abs(denom) < _EPS:
        return None
    qp = q - p
    t = qp.cross(s) / denom
    u = qp.cross(r) / denom
    if 1e-9 < t < 1.0 - 1e-9 and -_EPS <= u <= 1.0 + _EPS:
        return t
    return None


def polygon_walls(corners: Iterable[Point]) -> list[Segment]:
    """Segments forming the closed polygon through ``corners`` in order."""
    pts = list(corners)
    if len(pts) < 3:
        raise ValueError(f"a polygon needs at least 3 corners, got {len(pts)}")
    return [Segment(pts[i], pts[(i + 1) % len(pts)]) for i in range(len(pts))]
