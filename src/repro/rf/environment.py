"""Indoor environments and image-method multipath enumeration.

The paper evaluates Chronos on one floor of an office building
(Fig. 6): outer walls, inner partitions, metal cabinets.  This module
models such a floor as a set of 2-D :class:`Wall` segments with materials
and enumerates propagation paths between two antennas with the classic
image method:

* the direct path, attenuated by free space and any walls it crosses;
* first-order reflections: mirror the transmitter across each wall, check
  that the specular point actually lies on the wall, attenuate by the
  material's reflection loss;
* optional second-order reflections (two mirrors).

Amplitudes follow the free-space 1/d field law times per-interaction
material losses.  The result is a sparse :class:`~repro.rf.paths.PathSet`
— typically ~5 dominant paths indoors, matching the sparsity statistics
the paper reports in §12.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.rf.constants import SPEED_OF_LIGHT
from repro.rf.geometry import (
    Point,
    Segment,
    crossing_parameter,
    mirror_point,
    polygon_walls,
)
from repro.rf.materials import BRICK, DRYWALL, Material
from repro.rf.paths import PathSet, PropagationPath

_REFERENCE_DISTANCE_M = 1.0
"""Distance at which a path has unit free-space amplitude."""


@dataclass(frozen=True)
class Wall:
    """A wall: a segment plus the material it is made of."""

    segment: Segment
    material: Material

    @property
    def a(self) -> Point:
        return self.segment.a

    @property
    def b(self) -> Point:
        return self.segment.b


@dataclass(frozen=True)
class Clutter:
    """Near-field clutter: desks, monitors, bodies around each device.

    The image method only captures wall-scale specular paths, but real
    offices add weak scatterers within a meter or two of each endpoint.
    Their echoes arrive fractions of a nanosecond to a few nanoseconds
    after the direct path — inside the resolution cell of even a
    645 MHz stitched aperture — and bias the first peak slightly late.
    This is the dominant error floor of first-peak ToF in practice and
    the main reason the paper's medians are ~0.5 ns rather than tens of
    picoseconds.

    Attributes:
        n_scatterers: Echoes added per link.
        amplitude_rel: Scatterer amplitude cap, relative to the direct
            path's amplitude.
        min_excess_s / max_excess_s: Excess-delay range of the echoes.
    """

    n_scatterers: int = 3
    amplitude_rel: float = 0.3
    min_excess_s: float = 0.3e-9
    max_excess_s: float = 3e-9

    def __post_init__(self) -> None:
        if self.n_scatterers < 0:
            raise ValueError(f"n_scatterers must be >= 0, got {self.n_scatterers}")
        if not 0.0 <= self.amplitude_rel <= 1.0:
            raise ValueError(
                f"amplitude_rel must be in [0,1], got {self.amplitude_rel}"
            )
        if not 0.0 <= self.min_excess_s < self.max_excess_s:
            raise ValueError("need 0 <= min_excess < max_excess")


class Environment:
    """A 2-D indoor environment made of walls.

    Args:
        walls: The reflecting/obstructing surfaces.
        max_reflections: Image-method order (0 = direct only, 1 or 2).
        min_relative_amplitude: Paths weaker than this fraction of the
            strongest path's amplitude are pruned; this is what keeps
            profiles sparse.
        max_paths: Hard cap on the number of returned paths.
        scattering_loss_db: Extra *per-bounce* loss on top of the
            material's specular reflection loss.  Real walls are rough at
            Wi-Fi wavelengths and furniture breaks up specular returns;
            without this term the image method overstates long echoes,
            which would (unphysically) push squared-channel cross terms
            past the 200 ns CRT window.
    """

    def __init__(
        self,
        walls: Iterable[Wall] = (),
        max_reflections: int = 2,
        min_relative_amplitude: float = 0.08,
        max_paths: int = 10,
        scattering_loss_db: float = 5.0,
        clutter: Optional[Clutter] = None,
    ):
        self.walls: tuple[Wall, ...] = tuple(walls)
        if max_reflections not in (0, 1, 2):
            raise ValueError(
                f"max_reflections must be 0, 1 or 2, got {max_reflections}"
            )
        if not 0.0 <= min_relative_amplitude < 1.0:
            raise ValueError(
                "min_relative_amplitude must be in [0, 1), got "
                f"{min_relative_amplitude}"
            )
        if max_paths < 1:
            raise ValueError(f"max_paths must be >= 1, got {max_paths}")
        if scattering_loss_db < 0:
            raise ValueError(
                f"scattering loss must be non-negative, got {scattering_loss_db}"
            )
        self.max_reflections = max_reflections
        self.min_relative_amplitude = min_relative_amplitude
        self.max_paths = max_paths
        self.scattering_loss_db = scattering_loss_db
        self.clutter = clutter

    # ------------------------------------------------------------------
    # Wall-crossing helpers
    # ------------------------------------------------------------------
    def walls_crossed(
        self, a: Point, b: Point, exclude: Sequence[Wall] = ()
    ) -> list[Wall]:
        """Walls strictly crossed by the open segment from ``a`` to ``b``."""
        seg = Segment(a, b)
        excluded = set(id(w) for w in exclude)
        crossed = []
        for wall in self.walls:
            if id(wall) in excluded:
                continue
            if crossing_parameter(seg, wall.segment) is not None:
                crossed.append(wall)
        return crossed

    def has_line_of_sight(self, a: Point, b: Point) -> bool:
        """True when no wall obstructs the straight line between a and b."""
        return not self.walls_crossed(a, b)

    def _transmission_amplitude(
        self, a: Point, b: Point, exclude: Sequence[Wall] = ()
    ) -> tuple[float, int]:
        """Amplitude factor and wall count for the leg from ``a`` to ``b``."""
        crossed = self.walls_crossed(a, b, exclude)
        amp = 1.0
        for wall in crossed:
            amp *= wall.material.transmission_amplitude
        return amp, len(crossed)

    # ------------------------------------------------------------------
    # Image-method path enumeration
    # ------------------------------------------------------------------
    def trace(self, tx: Point, rx: Point) -> PathSet:
        """Enumerate propagation paths from ``tx`` to ``rx``.

        Always includes the direct path (possibly heavily attenuated by
        through-wall losses — that is what makes a location NLOS), plus
        valid specular reflections up to ``max_reflections`` bounces.
        """
        if tx.distance_to(rx) < 1e-6:
            raise ValueError("tx and rx must not be co-located")
        candidates: list[PropagationPath] = [self._direct_path(tx, rx)]
        if self.max_reflections >= 1:
            for wall in self.walls:
                path = self._first_order_path(tx, rx, wall)
                if path is not None:
                    candidates.append(path)
        if self.max_reflections >= 2:
            for w1 in self.walls:
                for w2 in self.walls:
                    if w1 is w2:
                        continue
                    path = self._second_order_path(tx, rx, w1, w2)
                    if path is not None:
                        candidates.append(path)
        candidates.extend(self._clutter_paths(tx, rx, candidates))
        return self._prune(candidates)

    def _clutter_paths(
        self, tx: Point, rx: Point, candidates: list[PropagationPath]
    ) -> list[PropagationPath]:
        """Near-field clutter echoes just after the direct path.

        Deterministic per endpoint pair: the same link traced twice sees
        the same clutter (the furniture does not move between sweeps).
        """
        if self.clutter is None or self.clutter.n_scatterers == 0:
            return []
        direct = min(candidates, key=lambda p: p.delay_s)
        seed = (
            int(round(tx.x * 1e3)) & 0xFFFF,
            int(round(tx.y * 1e3)) & 0xFFFF,
            int(round(rx.x * 1e3)) & 0xFFFF,
            int(round(rx.y * 1e3)) & 0xFFFF,
        )
        rng = __import__("numpy").random.default_rng(seed)
        # Clutter echoes ride on the field that reaches the endpoint
        # region along (roughly) the direct route, so they scale with the
        # direct path: a buried NLOS direct has correspondingly weak
        # near-field echoes.
        paths = []
        for _ in range(self.clutter.n_scatterers):
            excess = rng.uniform(self.clutter.min_excess_s, self.clutter.max_excess_s)
            amp = (
                direct.amplitude
                * self.clutter.amplitude_rel
                * rng.uniform(0.2, 1.0)
            )
            paths.append(
                PropagationPath(
                    delay_s=direct.delay_s + excess,
                    amplitude=float(amp),
                    bounces=1,
                    through_walls=0,
                )
            )
        return paths

    def _direct_path(self, tx: Point, rx: Point) -> PropagationPath:
        d = tx.distance_to(rx)
        amp = _free_space_amplitude(d)
        trans_amp, n_walls = self._transmission_amplitude(tx, rx)
        return PropagationPath(
            delay_s=d / SPEED_OF_LIGHT,
            amplitude=amp * trans_amp,
            bounces=0,
            through_walls=n_walls,
        )

    def _first_order_path(
        self, tx: Point, rx: Point, wall: Wall
    ) -> Optional[PropagationPath]:
        # A specular reflection only exists when both endpoints are on
        # the same side of the mirror; otherwise the image construction
        # fabricates an impossibly short "reflection".
        if not _same_side(tx, rx, wall.segment):
            return None
        image = mirror_point(tx, wall.segment)
        # The specular point is where image->rx crosses the wall segment.
        t = crossing_parameter(Segment(image, rx), wall.segment)
        if t is None:
            return None
        specular = Segment(image, rx).point_at(t)
        length = image.distance_to(rx)
        if length < 1e-6:
            return None
        amp = (
            _free_space_amplitude(length)
            * wall.material.reflection_amplitude
            * self._scattering_amplitude(bounces=1)
        )
        # Obstructions on both legs, excluding the reflecting wall itself.
        amp1, n1 = self._transmission_amplitude(tx, specular, exclude=[wall])
        amp2, n2 = self._transmission_amplitude(specular, rx, exclude=[wall])
        return PropagationPath(
            delay_s=length / SPEED_OF_LIGHT,
            amplitude=amp * amp1 * amp2,
            bounces=1,
            through_walls=n1 + n2,
        )

    def _second_order_path(
        self, tx: Point, rx: Point, w1: Wall, w2: Wall
    ) -> Optional[PropagationPath]:
        image1 = mirror_point(tx, w1.segment)
        image2 = mirror_point(image1, w2.segment)
        t2 = crossing_parameter(Segment(image2, rx), w2.segment)
        if t2 is None:
            return None
        spec2 = Segment(image2, rx).point_at(t2)
        t1 = crossing_parameter(Segment(image1, spec2), w1.segment)
        if t1 is None:
            return None
        spec1 = Segment(image1, spec2).point_at(t1)
        # Validate reflection geometry leg by leg: each incoming point
        # must face its mirror from the same side as the outgoing point.
        if not _same_side(tx, spec2, w1.segment):
            return None
        if not _same_side(spec1, rx, w2.segment):
            return None
        length = image2.distance_to(rx)
        if length < 1e-6:
            return None
        amp = (
            _free_space_amplitude(length)
            * w1.material.reflection_amplitude
            * w2.material.reflection_amplitude
            * self._scattering_amplitude(bounces=2)
        )
        amp1, n1 = self._transmission_amplitude(tx, spec1, exclude=[w1])
        amp2, n2 = self._transmission_amplitude(spec1, spec2, exclude=[w1, w2])
        amp3, n3 = self._transmission_amplitude(spec2, rx, exclude=[w2])
        return PropagationPath(
            delay_s=length / SPEED_OF_LIGHT,
            amplitude=amp * amp1 * amp2 * amp3,
            bounces=2,
            through_walls=n1 + n2 + n3,
        )

    def _scattering_amplitude(self, bounces: int) -> float:
        """Amplitude factor for diffuse-scattering loss over ``bounces``."""
        from repro.rf.constants import amplitude_db_to_linear

        return amplitude_db_to_linear(-self.scattering_loss_db * bounces)

    def _prune(self, candidates: list[PropagationPath]) -> PathSet:
        """Drop near-zero paths, keep the strongest ``max_paths``."""
        peak = max(p.amplitude for p in candidates)
        if peak <= 0:
            # Pathological total blockage; keep the direct path so that the
            # PathSet invariant (>= 1 path) holds and downstream code sees
            # a (hopeless) measurement rather than a crash.
            direct = min(candidates, key=lambda p: p.delay_s)
            return PathSet([direct])
        floor = peak * self.min_relative_amplitude
        kept = [p for p in candidates if p.amplitude >= floor]
        kept.sort(key=lambda p: -p.amplitude)
        kept = kept[: self.max_paths]
        # Never prune the direct path: it may be weak (NLOS) but its
        # presence/absence should be decided by the dominance threshold in
        # the estimator, not by the tracer.  This mirrors reality, where
        # the direct path physically exists even when attenuated.
        direct = min(candidates, key=lambda p: p.delay_s)
        if all(abs(p.delay_s - direct.delay_s) > 1e-15 for p in kept):
            kept.append(direct)
        return PathSet(kept)


def _same_side(p: Point, q: Point, wall: Segment) -> bool:
    """True when ``p`` and ``q`` lie strictly on the same side of the wall line."""
    d = wall.b - wall.a
    side_p = d.cross(p - wall.a)
    side_q = d.cross(q - wall.a)
    return side_p * side_q > 1e-12


def _free_space_amplitude(distance_m: float) -> float:
    """Free-space field amplitude, normalized to 1.0 at the reference 1 m."""
    return _REFERENCE_DISTANCE_M / max(distance_m, _REFERENCE_DISTANCE_M * 0.1)


def free_space() -> Environment:
    """An environment with no walls: a single free-space path."""
    return Environment(walls=(), max_reflections=0)


def rectangular_room(
    width_m: float,
    height_m: float,
    material: Material = BRICK,
    inner_walls: Iterable[Wall] = (),
    max_reflections: int = 2,
    clutter: Optional[Clutter] = None,
) -> Environment:
    """A rectangular room with optional inner partitions.

    The origin is the lower-left corner; outer walls run along the axes.
    """
    if width_m <= 0 or height_m <= 0:
        raise ValueError(
            f"room dimensions must be positive, got {width_m} x {height_m}"
        )
    corners = [
        Point(0.0, 0.0),
        Point(width_m, 0.0),
        Point(width_m, height_m),
        Point(0.0, height_m),
    ]
    outer = [Wall(seg, material) for seg in polygon_walls(corners)]
    return Environment(
        walls=tuple(outer) + tuple(inner_walls),
        max_reflections=max_reflections,
        clutter=clutter,
    )


def partition(
    x1_m: float, y1_m: float, x2_m: float, y2_m: float,
    material: Material = DRYWALL,
) -> Wall:
    """Convenience constructor for an inner wall segment (coords in meters)."""
    return Wall(Segment(Point(x1_m, y1_m), Point(x2_m, y2_m)), material)
