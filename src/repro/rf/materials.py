"""Building materials and their interaction with ~2.4/5 GHz signals.

The image-method tracer needs two numbers per wall: how much *amplitude*
survives a reflection off it, and how much survives transmission through
it.  Published measurement campaigns (e.g. ITU-R P.2040, and the indoor
measurements cited by the paper's multipath discussion) put typical
reflection losses at 3–10 dB and through-wall losses at 3–15 dB depending
on material; the constants below sit in those ranges.

Values are stored as *power* losses in dB and converted to amplitude
factors where needed, because the channel model of Eqn. 7 multiplies path
amplitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rf.constants import amplitude_db_to_linear


@dataclass(frozen=True)
class Material:
    """Radio-frequency behaviour of a wall material.

    Attributes:
        name: Human-readable material name.
        reflection_loss_db: Power lost by a bounce off the surface, in dB.
        transmission_loss_db: Power lost passing through the wall, in dB.
    """

    name: str
    reflection_loss_db: float
    transmission_loss_db: float

    def __post_init__(self) -> None:
        if self.reflection_loss_db < 0 or self.transmission_loss_db < 0:
            raise ValueError(
                f"losses must be non-negative dB values, got "
                f"reflection={self.reflection_loss_db}, "
                f"transmission={self.transmission_loss_db}"
            )

    @property
    def reflection_amplitude(self) -> float:
        """Linear amplitude factor applied per reflection (0..1]."""
        return amplitude_db_to_linear(-self.reflection_loss_db)

    @property
    def transmission_amplitude(self) -> float:
        """Linear amplitude factor applied per through-wall crossing (0..1]."""
        return amplitude_db_to_linear(-self.transmission_loss_db)


CONCRETE = Material("concrete", reflection_loss_db=5.0, transmission_loss_db=12.0)
"""Load-bearing concrete: strong reflector, poor transmitter."""

DRYWALL = Material("drywall", reflection_loss_db=9.0, transmission_loss_db=4.0)
"""Office partition drywall: weak reflector, passes signal with modest loss."""

GLASS = Material("glass", reflection_loss_db=9.0, transmission_loss_db=2.5)
"""Interior glass: mostly transparent at Wi-Fi frequencies."""

METAL = Material("metal", reflection_loss_db=2.0, transmission_loss_db=30.0)
"""Metal cabinets (present in the paper's testbed): near-perfect mirrors."""

BRICK = Material("brick", reflection_loss_db=6.5, transmission_loss_db=9.0)
"""Exterior brick walls."""
