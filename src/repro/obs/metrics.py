"""Thread-safe metrics registry: counters, gauges, histograms.

The serving stack (engine → service → stream → loc) previously exposed
only last-call snapshot dataclasses (``ServiceStats``, ``StreamStats``,
``WarmStartStats``) — overwritten per call, racy under the concurrent
flush pool, and never exported.  This registry is the cumulative,
process-wide complement: every layer publishes named series
(``engine.solve_s``, ``stream.queue_wait_s``, ...) with low-cardinality
labels (layer, plan, method, stage), and the whole registry renders as
Prometheus text format or a JSON snapshot with zero dependencies.

Design constraints, in order:

* **hot-path cheap** — one lock acquisition per update, fixed bucket
  search by bisection, no allocation on the repeat path;
* **thread-safe by construction** — all registry state is written under
  one registry lock (``# guarded-by:`` discipline, REP002-checked);
  solver worker threads, the asyncio loop, and direct callers may all
  publish concurrently;
* **bounded** — label cardinality is the caller's contract (plans and
  stages, never link ids), bucket layouts are fixed at first observe.

Histograms default to :data:`LATENCY_BUCKETS_S` — half-decade
log-spaced bounds from 10 µs to 100 s, wide enough for a kernel stage
and a whole fleet tick alike; count-valued histograms (flush sizes,
iteration counts) pass :data:`COUNT_BUCKETS` instead.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from types import TracebackType
from typing import Iterator, Mapping, Sequence

LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    10.0 ** (k / 2.0) for k in range(-10, 5)
)
"""Default histogram bounds: half-decades from 1e-5 s to 1e2 s."""

COUNT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)
"""Histogram bounds for count-valued series (flush sizes, iterations)."""

_KINDS = ("counter", "gauge", "histogram")

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _prometheus_name(name: str) -> str:
    """A dotted registry name as a Prometheus-legal metric name."""
    sanitized = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name.replace(".", "_")
    )
    return f"repro_{sanitized}"


def _format_bound(bound: float) -> str:
    return f"{bound:.10g}"


class _Histogram:
    """One labeled histogram series: bucket counts + sum/count/max."""

    __slots__ = ("bounds", "bucket_counts", "total", "count", "max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.total = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style)."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                within = (rank - cumulative) / bucket_count
                return lo + (hi - lo) * min(max(within, 0.0), 1.0)
            cumulative += bucket_count
        return self.max


class _Family:
    """All series of one metric name (one per distinct label set)."""

    __slots__ = ("kind", "help", "values", "histograms", "bounds")

    def __init__(
        self, kind: str, help_text: str, bounds: tuple[float, ...]
    ) -> None:
        self.kind = kind
        self.help = help_text
        self.values: dict[_LabelKey, float] = {}
        self.histograms: dict[_LabelKey, _Histogram] = {}
        self.bounds = bounds


class _TimerHandle:
    """Context manager observing its own wall duration into a histogram."""

    __slots__ = ("_registry", "_name", "_labels", "_start_s")

    def __init__(
        self, registry: "MetricsRegistry", name: str, labels: dict[str, object]
    ) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._start_s = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._start_s = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._registry.observe(
            self._name, time.perf_counter() - self._start_s, **self._labels
        )


class MetricsRegistry:
    """Process-wide named metric series, safe under concurrent writers.

    Names are dotted and unit-suffixed by convention
    (``stream.queue_wait_s``); labels are keyword arguments with
    low-cardinality values.  A name's kind (counter / gauge /
    histogram) is fixed by its first use; mixing kinds raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}  # guarded-by: self._lock

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` (>= 0) to the counter ``name``."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease (got {value})")
        key = _label_key(labels)
        with self._lock:
            self._families[name] = family = self._family(name, "counter")
            family.values[key] = family.values.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name`` to ``value``."""
        key = _label_key(labels)
        with self._lock:
            self._families[name] = family = self._family(name, "gauge")
            family.values[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] | None = None,
        **labels: object,
    ) -> None:
        """Record ``value`` into the histogram ``name``.

        ``buckets`` fixes the bucket bounds on the histogram's first
        observation (default :data:`LATENCY_BUCKETS_S`); later calls
        may omit it.
        """
        key = _label_key(labels)
        with self._lock:
            self._families[name] = family = self._family(
                name,
                "histogram",
                bounds=tuple(buckets) if buckets is not None else None,
            )
            histogram = family.histograms.get(key)
            if histogram is None:
                histogram = _Histogram(family.bounds)
                family.histograms[key] = histogram
            histogram.observe(value)

    def time(self, name: str, **labels: object) -> _TimerHandle:
        """Context manager observing the block's duration into ``name``."""
        return _TimerHandle(self, name, dict(labels))

    def reset(self) -> None:
        """Drop every series (tests and benchmark phase boundaries)."""
        with self._lock:
            self._families = {}

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: object) -> float:
        """Current value of a counter/gauge series (0.0 when absent)."""
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            return family.values.get(key, 0.0)

    def snapshot(
        self, prefix: str | None = None, include_buckets: bool = False
    ) -> dict[str, object]:
        """JSON-able view of every family (optionally name-filtered).

        Histogram series carry ``count``/``sum``/``max`` plus
        bucket-estimated ``p50``/``p95`` — the same numbers the trace
        CLI tabulates, so ``report()`` hooks and dashboards agree.
        ``include_buckets`` adds each histogram series' raw layout
        (``bounds`` + per-bucket ``bucket_counts``, last = overflow) —
        the health monitor diffs those between samples to compute
        quantiles over a rolling window instead of process lifetime.
        """
        out: dict[str, object] = {}
        with self._lock:
            for name, family in sorted(self._families.items()):
                if prefix is not None and not name.startswith(prefix):
                    continue
                series: list[dict[str, object]] = []
                if family.kind == "histogram":
                    for key, histogram in sorted(family.histograms.items()):
                        entry: dict[str, object] = {
                            "labels": dict(key),
                            "count": histogram.count,
                            "sum": histogram.total,
                            "max": histogram.max,
                            "p50": histogram.quantile(0.50),
                            "p95": histogram.quantile(0.95),
                        }
                        if include_buckets:
                            entry["bounds"] = list(histogram.bounds)
                            entry["bucket_counts"] = list(
                                histogram.bucket_counts
                            )
                        series.append(entry)
                else:
                    for key, value in sorted(family.values.items()):
                        series.append({"labels": dict(key), "value": value})
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "series": series,
                }
        return out

    def render_json(self, prefix: str | None = None) -> str:
        """The snapshot as an indented JSON document."""
        return json.dumps(self.snapshot(prefix), indent=2, sort_keys=True)

    def render_prometheus(self) -> str:
        """Every family in the Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            for name, family in sorted(self._families.items()):
                metric = _prometheus_name(name)
                if family.help:
                    lines.append(f"# HELP {metric} {family.help}")
                lines.append(f"# TYPE {metric} {family.kind}")
                if family.kind == "histogram":
                    for key, histogram in sorted(family.histograms.items()):
                        lines.extend(
                            self._prometheus_histogram(metric, key, histogram)
                        )
                else:
                    for key, value in sorted(family.values.items()):
                        lines.append(
                            f"{metric}{_prometheus_labels(key)} {value:.10g}"
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        bounds: tuple[float, ...] | None = None,
    ) -> _Family:
        """The (possibly new) family for ``name``.  Lock held.

        Pure get-or-build: the caller stores the result back into
        ``self._families`` inside its own ``with self._lock:`` block so
        the write stays lexically under the guard (REP002).
        """
        assert kind in _KINDS
        family = self._families.get(name)
        if family is None:
            return _Family(kind, "", bounds or LATENCY_BUCKETS_S)
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        return family

    @staticmethod
    def _prometheus_histogram(
        metric: str, key: _LabelKey, histogram: _Histogram
    ) -> Iterator[str]:
        cumulative = 0
        # Deliberately non-strict: bucket_counts has one extra entry
        # (the +Inf overflow bucket), emitted separately below.
        for bound, bucket_count in zip(
            histogram.bounds, histogram.bucket_counts, strict=False
        ):
            cumulative += bucket_count
            labels = _prometheus_labels(
                key + (("le", _format_bound(bound)),)
            )
            yield f"{metric}_bucket{labels} {cumulative}"
        labels = _prometheus_labels(key + (("le", "+Inf"),))
        yield f"{metric}_bucket{labels} {histogram.count}"
        plain = _prometheus_labels(key)
        yield f"{metric}_sum{plain} {histogram.total:.10g}"
        yield f"{metric}_count{plain} {histogram.count}"


def _prometheus_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + body + "}"


REGISTRY = MetricsRegistry()
"""The process-wide default registry every serving layer publishes to."""


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return REGISTRY
