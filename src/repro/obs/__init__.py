"""Unified observability for the serving stack: produce *and* consume.

Two process-wide singletons serve every layer:

* :data:`REGISTRY` — cumulative counters/gauges/histograms with
  Prometheus-text and JSON export (:mod:`repro.obs.metrics`);
* :data:`TRACER` — flush-path spans stitched across the asyncio loop
  and the flush-pool worker threads (:mod:`repro.obs.trace`).

:func:`timed_span` is the instrumentation idiom the layers share: one
context manager that both opens a trace span and observes the block's
duration into a latency histogram, so the trace tree and the metric
series always agree on what was measured.

On top of that substrate sits the consumption layer:

* :mod:`repro.obs.health` — declarative SLOs (latency percentiles,
  error budgets, the stream-overload signal) judged over rolling
  registry windows by a :class:`HealthMonitor`;
* :mod:`repro.obs.server` — the live ``/metrics`` + ``/health`` +
  ``/traces`` HTTP endpoint (:class:`ObsServer`), embeddable via
  ``StreamConfig(serve_port=...)`` / ``LocConfig(serve_port=...)``;
* :mod:`repro.obs.bench` — benchmark history + the median-of-last-K
  regression gate;
* :func:`report` — one aggregate: the health verdict plus each passed
  layer's ``report()``.

``python -m repro.obs summarize|serve|bench-compare`` is the CLI
(:mod:`repro.obs.cli`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.obs import trace
from repro.obs.health import (
    DEFAULT_SLOS,
    ErrorRateSlo,
    HealthMonitor,
    HealthReport,
    LatencySlo,
    OverloadSlo,
    Slo,
    SloStatus,
    get_monitor,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    REGISTRY,
    MetricsRegistry,
    get_registry,
)
from repro.obs.server import ObsServer
from repro.obs.trace import (
    TRACER,
    Span,
    SpanContext,
    Tracer,
    get_tracer,
)

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_SLOS",
    "LATENCY_BUCKETS_S",
    "REGISTRY",
    "TRACER",
    "ErrorRateSlo",
    "HealthMonitor",
    "HealthReport",
    "LatencySlo",
    "MetricsRegistry",
    "ObsServer",
    "OverloadSlo",
    "Slo",
    "SloStatus",
    "Span",
    "SpanContext",
    "Tracer",
    "get_monitor",
    "get_registry",
    "get_tracer",
    "report",
    "timed_span",
    "trace",
]


def report(*layers: Any, monitor: HealthMonitor | None = None) -> dict[str, Any]:
    """One aggregate view: the health verdict plus each layer's report.

    Every serving layer exposes ``report()`` (engine, service, stream,
    loc); pass any of them and this walks them uniformly alongside the
    monitor's current :class:`HealthReport` (a fresh sample is taken
    first, so the verdict reflects now, not the last tick)::

        obs.report(engine, service, streaming, loc_service)
    """
    active = monitor if monitor is not None else get_monitor()
    return {
        "generated_at_s": time.time(),
        "health": active.evaluate(sample_now=True).to_dict(),
        "layers": [layer.report() for layer in layers],
    }


@contextmanager
def timed_span(
    span_name: str,
    metric_name: str | None = None,
    metric_labels: Mapping[str, object] | None = None,
    parent: SpanContext | None = trace._UNSET,
    **attrs: Any,
) -> Iterator[Any]:
    """Open a trace span and time the block into a latency histogram.

    The span (named ``span_name``, carrying ``attrs``) and the
    histogram observation (``metric_name`` with ``metric_labels``)
    cover exactly the same interval; the observation lands even when
    the block raises, so error latency is not silently dropped.
    ``metric_name=None`` traces without publishing a metric.
    """
    start_s = time.perf_counter()
    try:
        with TRACER.span(span_name, parent, **attrs) as span:
            yield span
    finally:
        if metric_name is not None:
            REGISTRY.observe(
                metric_name,
                time.perf_counter() - start_s,
                **dict(metric_labels or {}),
            )
