"""Unified observability for the serving stack: metrics + tracing.

Two process-wide singletons serve every layer:

* :data:`REGISTRY` — cumulative counters/gauges/histograms with
  Prometheus-text and JSON export (:mod:`repro.obs.metrics`);
* :data:`TRACER` — flush-path spans stitched across the asyncio loop
  and the flush-pool worker threads (:mod:`repro.obs.trace`).

:func:`timed_span` is the instrumentation idiom the layers share: one
context manager that both opens a trace span and observes the block's
duration into a latency histogram, so the trace tree and the metric
series always agree on what was measured.

``python -m repro.obs summarize <trace.jsonl>`` tabulates a written
trace (:mod:`repro.obs.cli`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.obs import trace
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    REGISTRY,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    TRACER,
    Span,
    SpanContext,
    Tracer,
    get_tracer,
)

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS_S",
    "REGISTRY",
    "TRACER",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Tracer",
    "get_registry",
    "get_tracer",
    "timed_span",
    "trace",
]


@contextmanager
def timed_span(
    span_name: str,
    metric_name: str | None = None,
    metric_labels: Mapping[str, object] | None = None,
    parent: SpanContext | None = trace._UNSET,
    **attrs: Any,
) -> Iterator[Any]:
    """Open a trace span and time the block into a latency histogram.

    The span (named ``span_name``, carrying ``attrs``) and the
    histogram observation (``metric_name`` with ``metric_labels``)
    cover exactly the same interval; the observation lands even when
    the block raises, so error latency is not silently dropped.
    ``metric_name=None`` traces without publishing a metric.
    """
    start_s = time.perf_counter()
    try:
        with TRACER.span(span_name, parent, **attrs) as span:
            yield span
    finally:
        if metric_name is not None:
            REGISTRY.observe(
                metric_name,
                time.perf_counter() - start_s,
                **dict(metric_labels or {}),
            )
