"""Rolling SLO evaluation over the metrics registry: the health engine.

PR 8's registry publishes cumulative series; nothing consumed them at
runtime — a breached latency target or a saturating stream queue was
only visible by reading a snapshot by hand.  This module closes that
loop with three declarative objective kinds over the same series:

* :class:`LatencySlo` — a percentile of a latency histogram, computed
  over a **rolling window** (bucket-count deltas between the oldest and
  newest registry samples, not process lifetime) must stay under a
  target;
* :class:`ErrorRateSlo` — a failure counter's windowed rate over a
  traffic counter must stay inside a relative budget;
* :class:`OverloadSlo` — the derived overload signal, defined exactly
  as the ROADMAP's serving items state it: the rolling-window mean of
  ``stream.queue_wait_s`` *growing* while ``engine.solve_s`` holds
  steady.  Queue wait growing alone is ambiguous (heavier links also
  grow solve time); queue wait growing while per-flush solve time does
  not means arrivals outpace service — the precise condition the
  admission-control work gates on.  Both growing is load growth
  (``warn``), not overload (``breach``).

:class:`HealthMonitor` snapshots the registry into a bounded rolling
window of :class:`HealthSample`\\ s — on demand (:meth:`~HealthMonitor.sample`),
or on an interval from a background thread (:meth:`~HealthMonitor.start`)
— and :meth:`~HealthMonitor.evaluate` folds the window through every
SLO into a :class:`HealthReport` with per-SLO status (``ok`` / ``warn``
/ ``breach``) and burn rate.  :data:`DEFAULT_SLOS` wires objectives for
all four serving layers; the ``/health`` endpoint
(:mod:`repro.obs.server`) maps the report's overall status to HTTP
200/503.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.metrics import REGISTRY, MetricsRegistry

_STATUS_ORDER = ("ok", "warn", "breach")

_GROWTH_CAP = 1e6
"""Reported growth ratios are capped here (JSON has no infinity)."""


def worst_status(statuses: Sequence[str]) -> str:
    """The most severe of a set of SLO statuses (``ok`` when empty)."""
    worst = 0
    for status in statuses:
        worst = max(worst, _STATUS_ORDER.index(status))
    return _STATUS_ORDER[worst]


# ----------------------------------------------------------------------
# Window samples
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeriesSample:
    """One metric series' cumulative state at one sample instant.

    Counters/gauges keep their per-label-set values (error-rate SLOs
    filter on labels); histograms are aggregated across label sets —
    latency and overload objectives judge the layer, not one plan.
    """

    kind: str  # "counter" | "gauge" | "histogram" | "absent"
    values: tuple[tuple[tuple[tuple[str, str], ...], float], ...] = ()
    bounds: tuple[float, ...] = ()
    bucket_counts: tuple[int, ...] = ()
    total: float = 0.0
    count: int = 0
    max: float = 0.0

    @property
    def mean(self) -> float:
        """Cumulative mean of a histogram series (0 when empty)."""
        return self.total / self.count if self.count else 0.0


_ABSENT = SeriesSample(kind="absent")


@dataclass(frozen=True)
class HealthSample:
    """The registry state of every watched series at one instant."""

    time_s: float
    series: dict[str, SeriesSample] = field(default_factory=dict)

    def get(self, name: str) -> SeriesSample:
        """The named series' state (an inert placeholder when absent)."""
        return self.series.get(name, _ABSENT)


def take_sample(
    registry: MetricsRegistry,
    names: Sequence[str],
    now_s: float | None = None,
) -> HealthSample:
    """Snapshot the watched series of ``registry`` into one sample.

    ``now_s`` lets tests (and replays of recorded telemetry) pin the
    sample clock; live callers omit it.
    """
    snapshot = registry.snapshot(include_buckets=True)
    series: dict[str, SeriesSample] = {}
    for name in names:
        family = snapshot.get(name)
        if not isinstance(family, dict):
            continue
        entries = family.get("series")
        kind = str(family.get("kind"))
        if not isinstance(entries, list) or not entries:
            continue
        if kind == "histogram":
            series[name] = _aggregate_histogram(kind, entries)
        else:
            values = tuple(
                (
                    tuple(sorted(dict(entry["labels"]).items())),
                    float(entry["value"]),
                )
                for entry in entries
            )
            series[name] = SeriesSample(kind=kind, values=values)
    return HealthSample(
        time_s=time.time() if now_s is None else now_s, series=series
    )


def _aggregate_histogram(
    kind: str, entries: list[dict[str, Any]]
) -> SeriesSample:
    bounds = tuple(float(b) for b in entries[0]["bounds"])
    counts = [0] * (len(bounds) + 1)
    total = 0.0
    count = 0
    max_value = 0.0
    for entry in entries:
        if tuple(float(b) for b in entry["bounds"]) != bounds:
            # Mixed bucket layouts under one name cannot be summed;
            # keep the first layout's series and skip the stragglers.
            continue
        for i, bucket_count in enumerate(entry["bucket_counts"]):
            counts[i] += int(bucket_count)
        total += float(entry["sum"])
        count += int(entry["count"])
        max_value = max(max_value, float(entry["max"]))
    return SeriesSample(
        kind=kind,
        bounds=bounds,
        bucket_counts=tuple(counts),
        total=total,
        count=count,
        max=max_value,
    )


def _bucket_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
    hi_cap: float,
) -> float:
    """Bucket-interpolated quantile of a (windowed) bucket-count vector."""
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i] if i < len(bounds) else hi_cap
            within = (rank - cumulative) / bucket_count
            return lo + (hi - lo) * min(max(within, 0.0), 1.0)
        cumulative += bucket_count
    return hi_cap


def _histogram_delta(
    old: SeriesSample, new: SeriesSample
) -> tuple[tuple[float, ...], tuple[int, ...], float, int]:
    """``(bounds, bucket deltas, sum delta, count delta)`` old → new.

    A series that first appeared after ``old`` was taken diffs against
    zero; a registry reset mid-window would make deltas negative, so
    they clamp at zero (one window of distortion, then it heals).
    """
    if new.kind != "histogram":
        return ((), (), 0.0, 0)
    if old.kind != "histogram" or old.bounds != new.bounds:
        return (new.bounds, new.bucket_counts, new.total, new.count)
    deltas = tuple(
        max(0, n - o)
        for n, o in zip(new.bucket_counts, old.bucket_counts, strict=True)
    )
    return (
        new.bounds,
        deltas,
        max(0.0, new.total - old.total),
        max(0, new.count - old.count),
    )


def _counter_total(
    sample: SeriesSample, label_filter: tuple[tuple[str, str], ...]
) -> float:
    """Sum of a counter's label-set values matching ``label_filter``."""
    wanted = dict(label_filter)
    total = 0.0
    for labels, value in sample.values:
        if all(dict(labels).get(k) == v for k, v in wanted.items()):
            total += value
    return total


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloStatus:
    """One SLO's verdict for one evaluation window."""

    name: str
    layer: str
    kind: str
    status: str  # "ok" | "warn" | "breach"
    value: float
    target: float
    burn_rate: float
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "layer": self.layer,
            "kind": self.kind,
            "status": self.status,
            "value": self.value,
            "target": self.target,
            "burn_rate": self.burn_rate,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Slo:
    """Base of every declarative objective: identity plus evaluation.

    Subclasses declare which registry series they read
    (:meth:`series_names` — the monitor samples exactly that set) and
    how a window of samples maps to a :class:`SloStatus`.
    """

    name: str
    layer: str

    def series_names(self) -> tuple[str, ...]:
        """Registry series this objective needs sampled."""
        raise NotImplementedError

    def evaluate(self, samples: Sequence[HealthSample]) -> SloStatus:
        """This objective's verdict over a rolling window of samples."""
        raise NotImplementedError

    def _status(
        self, status: str, value: float, target: float, detail: str
    ) -> SloStatus:
        return SloStatus(
            name=self.name,
            layer=self.layer,
            kind=type(self).__name__.removesuffix("Slo").lower(),
            status=status,
            value=value,
            target=target,
            burn_rate=value / target if target > 0 else 0.0,
            detail=detail,
        )


@dataclass(frozen=True)
class LatencySlo(Slo):
    """A windowed latency percentile must stay under ``target_s``.

    The percentile is computed from histogram bucket-count deltas
    between the window's oldest and newest samples, so a long-lived
    process's quiet past cannot mask a latency regression happening
    now.  ``warn`` starts at ``warn_ratio * target_s``.
    """

    series: str = ""
    quantile: float = 0.95
    target_s: float = 1.0
    warn_ratio: float = 0.8

    def __post_init__(self) -> None:
        if not self.series:
            raise ValueError(f"SLO {self.name!r}: series is required")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: quantile must be in (0, 1), "
                f"got {self.quantile}"
            )
        if self.target_s <= 0:
            raise ValueError(
                f"SLO {self.name!r}: target_s must be > 0, got {self.target_s}"
            )

    def series_names(self) -> tuple[str, ...]:
        return (self.series,)

    def evaluate(self, samples: Sequence[HealthSample]) -> SloStatus:
        if not samples:
            return self._status("ok", 0.0, self.target_s, "no samples yet")
        old = samples[0].get(self.series)
        new = samples[-1].get(self.series)
        bounds, deltas, _sum_delta, count_delta = _histogram_delta(old, new)
        if count_delta == 0:
            return self._status(
                "ok", 0.0, self.target_s, "no traffic in window"
            )
        value = _bucket_quantile(bounds, deltas, self.quantile, new.max)
        detail = (
            f"p{int(self.quantile * 100)} = {value:.4g}s over "
            f"{count_delta} observations"
        )
        if value > self.target_s:
            return self._status("breach", value, self.target_s, detail)
        if value > self.warn_ratio * self.target_s:
            return self._status("warn", value, self.target_s, detail)
        return self._status("ok", value, self.target_s, detail)


@dataclass(frozen=True)
class ErrorRateSlo(Slo):
    """A windowed failure rate must stay inside a relative budget.

    ``numerator_labels`` filters the failure counter's label sets (e.g.
    ``(("ok", "False"),)`` over ``loc.fixes_total``); the denominator
    always sums every label set of its series.
    """

    numerator: str = ""
    denominator: str = ""
    budget_rel: float = 0.05
    warn_ratio: float = 0.8
    numerator_labels: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.numerator or not self.denominator:
            raise ValueError(
                f"SLO {self.name!r}: numerator and denominator are required"
            )
        if not 0.0 < self.budget_rel <= 1.0:
            raise ValueError(
                f"SLO {self.name!r}: budget_rel must be in (0, 1], "
                f"got {self.budget_rel}"
            )

    def series_names(self) -> tuple[str, ...]:
        return (self.numerator, self.denominator)

    def evaluate(self, samples: Sequence[HealthSample]) -> SloStatus:
        if not samples:
            return self._status("ok", 0.0, self.budget_rel, "no samples yet")
        old, new = samples[0], samples[-1]
        failed = _counter_total(
            new.get(self.numerator), self.numerator_labels
        ) - _counter_total(old.get(self.numerator), self.numerator_labels)
        traffic = _counter_total(new.get(self.denominator), ()) - (
            _counter_total(old.get(self.denominator), ())
        )
        if traffic <= 0:
            return self._status(
                "ok", 0.0, self.budget_rel, "no traffic in window"
            )
        rate = max(0.0, failed) / traffic
        detail = f"{failed:.0f} failures / {traffic:.0f} requests in window"
        if rate > self.budget_rel:
            return self._status("breach", rate, self.budget_rel, detail)
        if rate > self.warn_ratio * self.budget_rel:
            return self._status("warn", rate, self.budget_rel, detail)
        return self._status("ok", rate, self.budget_rel, detail)


@dataclass(frozen=True)
class OverloadSlo(Slo):
    """The ROADMAP's overload signal: queue wait grows, solve holds.

    The window's samples split at their midpoint into an early and a
    late half; each half's mean queue wait and mean solve time come
    from the cumulative sum/count deltas across that half.  Verdict:

    * ``breach`` — late-half mean queue wait at least ``growth_ratio``
      times the early half's (and above ``min_wait_s``) while the
      late-half mean solve time stayed within ``steady_ratio`` of the
      early half's: arrivals outpace a healthy solver — overload.
    * ``warn`` — queue wait grew but solve time grew with it: the work
      itself got heavier (bigger coalesced batches, harder channels) —
      capacity pressure, not queue overload.
    * ``ok`` — queue wait flat, below the floor, or idle (an idle late
      half is how a drained queue reports recovery).
    """

    queue_series: str = "stream.queue_wait_s"
    solve_series: str = "engine.solve_s"
    growth_ratio: float = 2.0
    steady_ratio: float = 1.5
    min_wait_s: float = 0.1

    def __post_init__(self) -> None:
        if self.growth_ratio <= 1.0:
            raise ValueError(
                f"SLO {self.name!r}: growth_ratio must be > 1, "
                f"got {self.growth_ratio}"
            )
        if self.steady_ratio <= 1.0:
            raise ValueError(
                f"SLO {self.name!r}: steady_ratio must be > 1, "
                f"got {self.steady_ratio}"
            )

    def series_names(self) -> tuple[str, ...]:
        return (self.queue_series, self.solve_series)

    @staticmethod
    def _half_mean(
        old: SeriesSample, new: SeriesSample
    ) -> tuple[float, int]:
        _bounds, _deltas, sum_delta, count_delta = _histogram_delta(old, new)
        if count_delta == 0:
            return 0.0, 0
        return sum_delta / count_delta, count_delta

    def evaluate(self, samples: Sequence[HealthSample]) -> SloStatus:
        if len(samples) < 3:
            return self._status(
                "ok",
                0.0,
                self.growth_ratio,
                f"insufficient samples ({len(samples)}/3)",
            )
        mid = len(samples) // 2
        early_wait, early_wait_n = self._half_mean(
            samples[0].get(self.queue_series),
            samples[mid].get(self.queue_series),
        )
        late_wait, late_wait_n = self._half_mean(
            samples[mid].get(self.queue_series),
            samples[-1].get(self.queue_series),
        )
        if late_wait_n == 0:
            return self._status(
                "ok", 0.0, self.growth_ratio, "queue idle in recent window"
            )
        if late_wait < self.min_wait_s:
            return self._status(
                "ok",
                1.0,
                self.growth_ratio,
                f"queue wait {late_wait:.4g}s below "
                f"{self.min_wait_s:.4g}s floor",
            )
        wait_growth = (
            late_wait / early_wait if early_wait_n and early_wait > 0
            else _GROWTH_CAP
        )
        wait_growth = min(wait_growth, _GROWTH_CAP)
        if wait_growth < self.growth_ratio:
            return self._status(
                "ok",
                wait_growth,
                self.growth_ratio,
                f"queue wait steady at {late_wait:.4g}s "
                f"({wait_growth:.2f}x over window)",
            )
        early_solve, early_solve_n = self._half_mean(
            samples[0].get(self.solve_series),
            samples[mid].get(self.solve_series),
        )
        late_solve, late_solve_n = self._half_mean(
            samples[mid].get(self.solve_series),
            samples[-1].get(self.solve_series),
        )
        if late_solve_n == 0 or early_solve_n == 0 or early_solve <= 0:
            solve_growth = 1.0 if late_solve_n == 0 else _GROWTH_CAP
        else:
            solve_growth = min(late_solve / early_solve, _GROWTH_CAP)
        detail = (
            f"queue wait {early_wait:.4g}s -> {late_wait:.4g}s "
            f"({wait_growth:.2f}x), solve {early_solve:.4g}s -> "
            f"{late_solve:.4g}s ({solve_growth:.2f}x)"
        )
        if solve_growth <= self.steady_ratio:
            return self._status(
                "breach", wait_growth, self.growth_ratio, detail
            )
        return self._status(
            "warn",
            wait_growth,
            self.growth_ratio,
            detail + " — load growth, not queue overload",
        )


# ----------------------------------------------------------------------
# Reports and the monitor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HealthReport:
    """Every SLO's verdict over one evaluation window."""

    status: str
    generated_at_s: float
    n_samples: int
    window_s: float
    slos: tuple[SloStatus, ...]

    @property
    def ok(self) -> bool:
        """Whether the process is servable (``ok`` or ``warn``)."""
        return self.status != "breach"

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "generated_at_s": self.generated_at_s,
            "n_samples": self.n_samples,
            "window_s": self.window_s,
            "slos": [slo.to_dict() for slo in self.slos],
        }


DEFAULT_SLOS: tuple[Slo, ...] = (
    LatencySlo(
        name="engine-solve-p95",
        layer="engine",
        series="engine.solve_s",
        quantile=0.95,
        target_s=2.0,
    ),
    LatencySlo(
        name="service-submit-p95",
        layer="service",
        series="service.submit_s",
        quantile=0.95,
        target_s=5.0,
    ),
    ErrorRateSlo(
        name="service-error-budget",
        layer="service",
        numerator="service.failed_total",
        denominator="service.requests_total",
        budget_rel=0.05,
    ),
    LatencySlo(
        name="stream-queue-wait-p95",
        layer="stream",
        series="stream.queue_wait_s",
        quantile=0.95,
        target_s=1.0,
    ),
    ErrorRateSlo(
        name="stream-error-budget",
        layer="stream",
        numerator="stream.failed_total",
        denominator="stream.requests_total",
        budget_rel=0.05,
    ),
    OverloadSlo(name="stream-overload", layer="stream"),
    LatencySlo(
        name="loc-locate-p95",
        layer="loc",
        series="loc.locate_s",
        quantile=0.95,
        target_s=5.0,
    ),
    ErrorRateSlo(
        name="loc-fix-error-budget",
        layer="loc",
        numerator="loc.fixes_total",
        numerator_labels=(("ok", "False"),),
        denominator="loc.fixes_total",
        budget_rel=0.05,
    ),
)
"""Default objectives: one latency target per layer plus error budgets
for the layers with failure accounting and the stream overload signal.
Thresholds are deliberately generous (single-core CI solves a fleet
tick in hundreds of milliseconds); deployments tune their own set."""


class HealthMonitor:
    """Samples the registry into a rolling window and judges the SLOs.

    Sampling is cheap (one registry snapshot filtered to the watched
    series) and safe from any thread.  Use :meth:`sample` from a test
    or an application tick, or :meth:`start` for a background sampling
    thread (:meth:`stop` joins it).  :meth:`evaluate` never mutates the
    window unless asked to take a fresh sample first.
    """

    def __init__(
        self,
        slos: Sequence[Slo] | None = None,
        registry: MetricsRegistry | None = None,
        interval_s: float = 1.0,
        window_samples: int = 120,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if window_samples < 3:
            raise ValueError(
                f"window_samples must be >= 3, got {window_samples}"
            )
        self.slos: tuple[Slo, ...] = (
            tuple(slos) if slos is not None else DEFAULT_SLOS
        )
        self.registry = registry if registry is not None else REGISTRY
        self.interval_s = interval_s
        names: set[str] = set()
        for slo in self.slos:
            names.update(slo.series_names())
        self._series_names = tuple(sorted(names))
        self._lock = threading.Lock()
        self._samples: deque[HealthSample] = deque(  # guarded-by: self._lock
            maxlen=window_samples
        )
        self._thread: threading.Thread | None = None  # guarded-by: self._lock
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Samples currently held in the rolling window."""
        with self._lock:
            return len(self._samples)

    def sample(self, now_s: float | None = None) -> HealthSample:
        """Take one registry sample into the rolling window."""
        taken = take_sample(self.registry, self._series_names, now_s)
        with self._lock:
            self._samples.append(taken)
        return taken

    def reset(self) -> None:
        """Drop the rolling window (tests, load-phase boundaries)."""
        with self._lock:
            self._samples.clear()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, sample_now: bool = False) -> HealthReport:
        """Judge every SLO over the current window.

        ``sample_now`` appends a fresh sample first, so pull-based
        consumers (the ``/health`` endpoint without a sampler thread)
        always judge up-to-date state.
        """
        if sample_now:
            self.sample()
        with self._lock:
            samples = list(self._samples)
        statuses = tuple(slo.evaluate(samples) for slo in self.slos)
        window_s = (
            samples[-1].time_s - samples[0].time_s if len(samples) > 1 else 0.0
        )
        return HealthReport(
            status=worst_status([s.status for s in statuses]),
            generated_at_s=time.time(),
            n_samples=len(samples),
            window_s=window_s,
            slos=statuses,
        )

    # ------------------------------------------------------------------
    # Background sampling
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background sampling thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            thread = threading.Thread(
                target=self._run, name="obs-health-sampler", daemon=True
            )
            self._thread = thread
        thread.start()

    def stop(self) -> None:
        """Stop and join the background sampling thread (idempotent)."""
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=10.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()


MONITOR = HealthMonitor()
"""The process-wide default monitor (default SLOs, default registry)."""


def get_monitor() -> HealthMonitor:
    """The process-wide default health monitor."""
    return MONITOR
