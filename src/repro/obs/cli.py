"""Trace-file summarizer: per-stage latency table from a spans JSONL.

``python -m repro.obs summarize trace.jsonl`` aggregates the spans the
tracer wrote (one JSON object per line) into a per-stage table —
count, p50/p95/max duration, and self vs cumulative time — answering
"where did the request's wall time go" without any external tooling.

*Cumulative* time is a stage's own span durations summed; *self* time
subtracts the durations of its direct children (matched by
``parent_id`` within the same trace), so a ``stream.flush`` whose time
is all spent inside ``stream.plan_solve`` children shows near-zero
self.  Exit status: 0 with a non-empty table, 1 when the file holds no
valid spans (CI's smoke step fails on that), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


def load_spans(path: Path) -> list[dict[str, Any]]:
    """Parse a spans JSONL file, skipping ill-formed lines."""
    spans: list[dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if "name" not in record or "duration_s" not in record:
                continue
            try:
                record["duration_s"] = float(record["duration_s"])
            except (TypeError, ValueError):
                continue
            spans.append(record)
    return spans


def summarize_spans(spans: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate spans into per-stage rows, heaviest cumulative first."""
    children_s: dict[tuple[str, str], float] = {}
    for span in spans:
        parent_id = span.get("parent_id")
        trace_id = span.get("trace_id")
        if parent_id and trace_id:
            key = (str(trace_id), str(parent_id))
            children_s[key] = children_s.get(key, 0.0) + span["duration_s"]

    durations: dict[str, list[float]] = {}
    self_s: dict[str, float] = {}
    errors: dict[str, int] = {}
    for span in spans:
        name = str(span["name"])
        duration = span["duration_s"]
        durations.setdefault(name, []).append(duration)
        own_children = children_s.get(
            (str(span.get("trace_id")), str(span.get("span_id"))), 0.0
        )
        self_s[name] = self_s.get(name, 0.0) + max(0.0, duration - own_children)
        if span.get("error"):
            errors[name] = errors.get(name, 0) + 1

    rows: list[dict[str, Any]] = []
    for name, values in durations.items():
        values.sort()
        rows.append(
            {
                "stage": name,
                "count": len(values),
                "p50_s": _percentile(values, 0.50),
                "p95_s": _percentile(values, 0.95),
                "max_s": values[-1],
                "self_s": self_s[name],
                "cumulative_s": sum(values),
                "errors": errors.get(name, 0),
            }
        )
    rows.sort(key=lambda row: -row["cumulative_s"])
    return rows


def _format_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.1f}us"


def render_table(rows: Sequence[dict[str, Any]]) -> str:
    """The per-stage rows as an aligned text table."""
    header = (
        f"{'stage':<28} {'count':>6} {'p50':>10} {'p95':>10} "
        f"{'max':>10} {'self':>10} {'cumul':>10} {'err':>4}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['stage']:<28} {row['count']:>6} "
            f"{_format_s(row['p50_s']):>10} {_format_s(row['p95_s']):>10} "
            f"{_format_s(row['max_s']):>10} {_format_s(row['self_s']):>10} "
            f"{_format_s(row['cumulative_s']):>10} {row['errors']:>4}"
        )
    return "\n".join(lines)


def _cmd_summarize(args: argparse.Namespace) -> int:
    path = Path(args.trace_file)
    if not path.is_file():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    spans = load_spans(path)
    rows = summarize_spans(spans)
    if not rows:
        print(
            f"error: {path} contains no valid spans "
            "(empty or ill-formed trace)",
            file=sys.stderr,
        )
        return 1
    if args.json:
        n_traces = len(
            {span.get("trace_id") for span in spans if span.get("trace_id")}
        )
        print(
            json.dumps(
                {"n_spans": len(spans), "n_traces": n_traces, "stages": rows},
                indent=2,
            )
        )
    else:
        print(f"{len(spans)} spans from {path}")
        print(render_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling for the repro serving stack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize",
        help="per-stage latency table (p50/p95/max, self vs cumulative) "
        "from a spans JSONL trace file",
    )
    summarize.add_argument("trace_file", help="spans JSONL written by the tracer")
    summarize.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of a table",
    )
    summarize.set_defaults(func=_cmd_summarize)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    result: int = args.func(args)
    return result
