"""Observability CLI: trace summarizer, telemetry server, bench gate.

``python -m repro.obs summarize trace.jsonl`` (or ``-`` for stdin)
aggregates the spans the tracer wrote (one JSON object per line) into
a per-stage table — count, p50/p95/max duration, and self vs
cumulative time — answering "where did the request's wall time go"
without any external tooling.

*Cumulative* time is a stage's own span durations summed; *self* time
subtracts the durations of its direct children (matched by
``parent_id`` within the same trace), so a ``stream.flush`` whose time
is all spent inside ``stream.plan_solve`` children shows near-zero
self.  Ill-formed lines (interleaved partial writes from a crashed
writer) are skipped and counted, not fatal — unless *nothing* valid
remains.  Exit status: 0 with a non-empty table, 1 when the input
holds no valid spans (CI's smoke step fails on that), 2 on usage
errors.

``python -m repro.obs serve --port N`` runs the standalone telemetry
endpoint (``/metrics``, ``/health``, ``/traces``); ``python -m
repro.obs bench-compare`` runs the benchmark-history regression gate
(exit 1 on regression).  See :mod:`repro.obs.server` and
:mod:`repro.obs.bench`.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path
from typing import Any, Iterable, Sequence


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


def parse_span_lines(
    lines: Iterable[str],
) -> tuple[list[dict[str, Any]], int]:
    """Parse spans-JSONL lines; returns ``(spans, n_skipped)``.

    Blank lines don't count as skipped; corrupt JSON (a crashed
    writer's interleaved partial lines), non-object lines, and records
    missing span fields do.
    """
    spans: list[dict[str, Any]] = []
    skipped = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(record, dict):
            skipped += 1
            continue
        if "name" not in record or "duration_s" not in record:
            skipped += 1
            continue
        try:
            record["duration_s"] = float(record["duration_s"])
        except (TypeError, ValueError):
            skipped += 1
            continue
        spans.append(record)
    return spans, skipped


def load_spans(path: Path) -> list[dict[str, Any]]:
    """Parse a spans JSONL file, skipping ill-formed lines."""
    with path.open("r", encoding="utf-8") as handle:
        spans, _skipped = parse_span_lines(handle)
    return spans


def summarize_spans(spans: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate spans into per-stage rows, heaviest cumulative first."""
    children_s: dict[tuple[str, str], float] = {}
    for span in spans:
        parent_id = span.get("parent_id")
        trace_id = span.get("trace_id")
        if parent_id and trace_id:
            key = (str(trace_id), str(parent_id))
            children_s[key] = children_s.get(key, 0.0) + span["duration_s"]

    durations: dict[str, list[float]] = {}
    self_s: dict[str, float] = {}
    errors: dict[str, int] = {}
    for span in spans:
        name = str(span["name"])
        duration = span["duration_s"]
        durations.setdefault(name, []).append(duration)
        own_children = children_s.get(
            (str(span.get("trace_id")), str(span.get("span_id"))), 0.0
        )
        self_s[name] = self_s.get(name, 0.0) + max(0.0, duration - own_children)
        if span.get("error"):
            errors[name] = errors.get(name, 0) + 1

    rows: list[dict[str, Any]] = []
    for name, values in durations.items():
        values.sort()
        rows.append(
            {
                "stage": name,
                "count": len(values),
                "p50_s": _percentile(values, 0.50),
                "p95_s": _percentile(values, 0.95),
                "max_s": values[-1],
                "self_s": self_s[name],
                "cumulative_s": sum(values),
                "errors": errors.get(name, 0),
            }
        )
    rows.sort(key=lambda row: -row["cumulative_s"])
    return rows


def _format_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.1f}us"


def render_table(rows: Sequence[dict[str, Any]]) -> str:
    """The per-stage rows as an aligned text table."""
    header = (
        f"{'stage':<28} {'count':>6} {'p50':>10} {'p95':>10} "
        f"{'max':>10} {'self':>10} {'cumul':>10} {'err':>4}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['stage']:<28} {row['count']:>6} "
            f"{_format_s(row['p50_s']):>10} {_format_s(row['p95_s']):>10} "
            f"{_format_s(row['max_s']):>10} {_format_s(row['self_s']):>10} "
            f"{_format_s(row['cumulative_s']):>10} {row['errors']:>4}"
        )
    return "\n".join(lines)


def _cmd_summarize(args: argparse.Namespace) -> int:
    if args.trace_file == "-":
        source = "<stdin>"
        spans, skipped = parse_span_lines(sys.stdin)
    else:
        path = Path(args.trace_file)
        if not path.is_file():
            print(f"error: no such trace file: {path}", file=sys.stderr)
            return 2
        source = str(path)
        with path.open("r", encoding="utf-8") as handle:
            spans, skipped = parse_span_lines(handle)
    rows = summarize_spans(spans)
    if not rows:
        detail = (
            f"{skipped} ill-formed line(s) skipped — truncated or "
            "interleaved partial writes from a crashed writer?"
            if skipped
            else "empty trace"
        )
        print(
            f"error: {source} contains no valid spans ({detail})",
            file=sys.stderr,
        )
        return 1
    if skipped:
        print(
            f"warning: skipped {skipped} ill-formed line(s) in {source} "
            "(partial writes from a crashed writer?)",
            file=sys.stderr,
        )
    if args.json:
        n_traces = len(
            {span.get("trace_id") for span in spans if span.get("trace_id")}
        )
        print(
            json.dumps(
                {"n_spans": len(spans), "n_traces": n_traces, "stages": rows},
                indent=2,
            )
        )
    else:
        print(f"{len(spans)} spans from {source}")
        print(render_table(rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.health import get_monitor
    from repro.obs.server import ObsServer

    monitor = get_monitor()
    sample_on_request = args.interval_s <= 0
    server = ObsServer(
        port=args.port,
        host=args.host,
        monitor=monitor,
        sample_on_request=sample_on_request,
    ).start()
    if not sample_on_request:
        monitor.interval_s = args.interval_s
        monitor.start()
    print(
        f"serving telemetry on {server.url} "
        "(/metrics /health /traces; Ctrl-C to stop)",
        flush=True,
    )
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        if not sample_on_request:
            monitor.stop()
        server.stop()
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs import bench

    path = Path(args.history)
    entries = bench.load_history(path)
    if not entries:
        print(f"bench-compare: no history at {path} yet; nothing to gate")
        return 0
    comparison = bench.compare(
        entries,
        last_k=args.last_k,
        threshold_rel=args.threshold,
        min_history=args.min_history,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "ok": comparison.ok,
                    "history_depth": bench.history_depth(entries),
                    "rows": [
                        {
                            "series": row.series,
                            "status": row.status,
                            "n_points": row.n_points,
                            "current": row.current,
                            "baseline": row.baseline,
                            "ratio": row.ratio,
                            "unit": row.unit,
                        }
                        for row in comparison.rows
                    ],
                },
                indent=2,
            )
        )
    else:
        print(comparison.render())
        depth = bench.history_depth(entries)
        if depth < args.min_history:
            print(
                f"history depth {depth} < {args.min_history}: "
                "gate is informational until the history fills"
            )
    return 0 if comparison.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling for the repro serving stack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize",
        help="per-stage latency table (p50/p95/max, self vs cumulative) "
        "from a spans JSONL trace file",
    )
    summarize.add_argument(
        "trace_file",
        help="spans JSONL written by the tracer, or '-' for stdin",
    )
    summarize.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of a table",
    )
    summarize.set_defaults(func=_cmd_summarize)

    serve = sub.add_parser(
        "serve",
        help="run the telemetry endpoint (/metrics, /health, /traces)",
    )
    serve.add_argument(
        "--port", type=int, default=9430, help="port to bind (default 9430)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default localhost)"
    )
    serve.add_argument(
        "--interval-s",
        type=float,
        default=0.0,
        dest="interval_s",
        help="background health-sampling interval in seconds; "
        "0 (default) samples on each /health request instead",
    )
    serve.set_defaults(func=_cmd_serve)

    bench_compare = sub.add_parser(
        "bench-compare",
        help="gate benchmark history for regressions "
        "(median-of-last-K baseline; exit 1 on regression)",
    )
    bench_compare.add_argument(
        "--history",
        default="benchmarks/artifacts/bench_history.jsonl",
        help="bench_history.jsonl path "
        "(default benchmarks/artifacts/bench_history.jsonl)",
    )
    bench_compare.add_argument(
        "--last-k",
        type=int,
        default=5,
        dest="last_k",
        help="baseline = median of this many points before the newest",
    )
    bench_compare.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative drop below baseline that counts as a regression",
    )
    bench_compare.add_argument(
        "--min-history",
        type=int,
        default=5,
        dest="min_history",
        help="series with fewer points than this never fail the gate",
    )
    bench_compare.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison as JSON instead of a table",
    )
    bench_compare.set_defaults(func=_cmd_bench_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    result: int = args.func(args)
    return result
