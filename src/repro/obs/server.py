"""Live telemetry endpoint: ``/metrics``, ``/health``, ``/traces``.

PR 8's registry and tracer were export-on-demand only — a process had
to be imported and asked.  This module puts them on the wire with the
stdlib alone (:class:`http.server.ThreadingHTTPServer`; no new
dependencies, matching the repo's constraint):

* ``GET /metrics`` — the whole registry in Prometheus text exposition
  format, scrapeable by a stock Prometheus;
* ``GET /health`` — the :class:`~repro.obs.health.HealthMonitor`'s
  current :class:`~repro.obs.health.HealthReport` as JSON, with the
  HTTP status carrying the verdict: 200 for ``ok``/``warn``, 503 for
  ``breach`` — so a load balancer or readiness probe needs no JSON
  parsing to stop routing to an overloaded process;
* ``GET /traces`` — the tracer's recent ring-buffer spans as JSON
  (``?limit=N`` caps the count, newest kept);
* ``GET /`` — a route index.

Start one embedded via ``StreamConfig(serve_port=...)`` /
``LocConfig(serve_port=...)`` (the owning service stops it on
``close()``), standalone via :func:`serve` / ``python -m repro.obs
serve``, or in a test with ``ObsServer(port=0)`` (ephemeral port,
``.port`` reports the bound one).  Handlers run on daemon threads and
only read thread-safe substrate (registry snapshot, monitor evaluate,
tracer ring copy), so serving never blocks the serving stack.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.obs.health import HealthMonitor, get_monitor
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import TRACER, Tracer

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_ROUTES = ("/", "/metrics", "/health", "/traces")


class _ObsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its owning :class:`ObsServer`."""

    daemon_threads = True
    obs: "ObsServer"


class _Handler(BaseHTTPRequestHandler):
    """One request: route, render from the substrate, reply."""

    server: _ObsHTTPServer

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # a scrape every few seconds would drown real output.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        obs = self.server.obs
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            self._reply(
                200,
                PROMETHEUS_CONTENT_TYPE,
                obs.registry.render_prometheus(),
            )
        elif route == "/health":
            report = obs.monitor.evaluate(sample_now=obs.sample_on_request)
            self._reply_json(
                200 if report.ok else 503, report.to_dict()
            )
        elif route == "/traces":
            spans = obs.tracer.finished()
            query = parse_qs(parsed.query)
            if "limit" in query:
                try:
                    limit = max(0, int(query["limit"][-1]))
                except ValueError:
                    self._reply_json(
                        400, {"error": "limit must be an integer"}
                    )
                    return
                spans = spans[len(spans) - limit:] if limit else []
            self._reply_json(
                200,
                {
                    "n_spans": len(spans),
                    "tracing_enabled": obs.tracer.enabled,
                    "spans": spans,
                },
            )
        elif route == "/":
            self._reply_json(200, {"routes": list(_ROUTES)})
        else:
            self._reply_json(
                404, {"error": f"no route {route!r}", "routes": list(_ROUTES)}
            )

    def _reply_json(self, status: int, payload: dict[str, Any]) -> None:
        self._reply(
            status,
            "application/json; charset=utf-8",
            json.dumps(payload, indent=2, sort_keys=True, default=str),
        )

    def _reply(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class ObsServer:
    """A start/stoppable telemetry endpoint over the obs substrate.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`); ``sample_on_request=True`` (the default) makes each
    ``/health`` request append a fresh monitor sample before judging,
    so a pull-only deployment needs no background sampler thread —
    pass ``False`` when a sampler (or the application tick) already
    feeds the window and request-rate must not distort it.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        monitor: HealthMonitor | None = None,
        tracer: Tracer | None = None,
        sample_on_request: bool = True,
    ) -> None:
        self.requested_port = port
        self.host = host
        self.registry = registry if registry is not None else REGISTRY
        self.monitor = monitor if monitor is not None else get_monitor()
        self.tracer = tracer if tracer is not None else TRACER
        self.sample_on_request = sample_on_request
        self._lock = threading.Lock()
        self._httpd: _ObsHTTPServer | None = None  # guarded-by: self._lock
        self._thread: threading.Thread | None = None  # guarded-by: self._lock

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ObsServer":
        """Bind and serve on a daemon thread (idempotent); returns self."""
        with self._lock:
            if self._httpd is not None:
                return self
            httpd = _ObsHTTPServer((self.host, self.requested_port), _Handler)
            httpd.obs = self
            thread = threading.Thread(
                target=httpd.serve_forever,
                name="obs-http-server",
                daemon=True,
            )
            self._httpd = httpd
            self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        with self._lock:
            httpd, self._httpd = self._httpd, None
            thread, self._thread = self._thread, None
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join(timeout=10.0)

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the server is currently bound and serving."""
        with self._lock:
            return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when requested as 0)."""
        with self._lock:
            if self._httpd is None:
                return self.requested_port
            return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Root URL of the running (or to-be-started) server."""
        return f"http://{self.host}:{self.port}"


def serve(
    port: int,
    host: str = "127.0.0.1",
    monitor: HealthMonitor | None = None,
) -> ObsServer:
    """Start a telemetry endpoint on ``host:port`` and return it running."""
    return ObsServer(port=port, host=host, monitor=monitor).start()
