"""Benchmark history + noise-aware regression gate.

The nightly lane writes ``benchmarks/artifacts/batch_throughput.json``
— one snapshot, overwritten per run, so a throughput regression is
only visible by diffing artifacts by hand.  This module gives the
numbers a memory and a gate:

* :func:`append_history` adds one schema-versioned JSON line per
  benchmark series per run to ``bench_history.jsonl`` (git SHA,
  caller-supplied timestamp, headline rate, kernel-stage breakdown);
* :func:`load_history` reads it back tolerantly — a truncated final
  line from a killed run or an entry from a newer schema must not
  poison the whole gate;
* :func:`compare` judges the newest point of every series against a
  **median-of-last-K baseline** with a relative threshold.  The median
  absorbs single-run outliers and the default 15% threshold clears
  CI's observed run-to-run noise (±5%) while catching real slowdowns
  (a 30% drop is well past it).  Series with fewer than
  ``min_history`` points report ``insufficient-history`` and never
  fail the gate — CI additionally runs the whole step soft-fail until
  the history is that deep.

``python -m repro.obs bench-compare`` wraps :func:`compare` for CI:
prints the per-series trend table, exits 1 on any regression, 0
otherwise.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

HISTORY_SCHEMA_VERSION = 1
"""Bump when an entry's required fields change; readers skip newer."""

DEFAULT_HISTORY_PATH = Path("benchmarks/artifacts/bench_history.jsonl")

_REQUIRED_FIELDS = ("schema_version", "series", "value", "git_sha")


def git_sha() -> str:
    """The current commit's SHA: CI env var, else git, else ``unknown``."""
    sha = os.environ.get("GITHUB_SHA", "")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() or "unknown"


def append_history(
    path: str | Path,
    series: str,
    value: float,
    *,
    unit: str = "links_per_s",
    sha: str | None = None,
    timestamp_s: float = 0.0,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Append one benchmark point to the history file; returns the entry.

    ``timestamp_s`` is passed in by the caller (the benchmark reads its
    own clock once per run) so every series appended from one run
    shares an identical stamp and rows group cleanly.  The parent
    directory is created on demand; writes are line-append only, so an
    interrupted run costs at most one (skipped-on-read) partial line.
    """
    entry: dict[str, Any] = {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "series": series,
        "value": float(value),
        "unit": unit,
        "git_sha": sha if sha is not None else git_sha(),
        "timestamp_s": float(timestamp_s),
        "meta": meta or {},
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as sink:
        sink.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str | Path) -> list[dict[str, Any]]:
    """Read history entries in file order, skipping unusable lines.

    Skips: blank/truncated/corrupt JSON lines (a killed writer),
    entries missing required fields, and entries stamped with a newer
    schema version than this reader understands.
    """
    target = Path(path)
    if not target.exists():
        return []
    entries: list[dict[str, Any]] = []
    with target.open("r", encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict):
                continue
            if any(name not in entry for name in _REQUIRED_FIELDS):
                continue
            if int(entry["schema_version"]) > HISTORY_SCHEMA_VERSION:
                continue
            entries.append(entry)
    return entries


@dataclass(frozen=True)
class SeriesTrend:
    """One benchmark series' newest point judged against its baseline."""

    series: str
    status: str  # "ok" | "regression" | "insufficient-history"
    n_points: int
    current: float
    baseline: float | None
    unit: str
    history: tuple[float, ...] = ()

    @property
    def ratio(self) -> float | None:
        """current / baseline (None without a baseline)."""
        if self.baseline is None or self.baseline <= 0:
            return None
        return self.current / self.baseline


@dataclass(frozen=True)
class BenchComparison:
    """Every series' trend verdict for one gate run."""

    rows: tuple[SeriesTrend, ...]
    threshold_rel: float
    last_k: int
    min_history: int
    regressions: tuple[SeriesTrend, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "regressions",
            tuple(r for r in self.rows if r.status == "regression"),
        )

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """The per-series trend table, regressions flagged."""
        header = (
            f"{'series':<28} {'n':>4} {'baseline':>12} {'current':>12} "
            f"{'delta':>8}  status"
        )
        lines = [
            f"bench-compare: baseline = median of last {self.last_k}, "
            f"threshold {self.threshold_rel:.0%}, "
            f"min history {self.min_history}",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            baseline = (
                f"{row.baseline:.1f}" if row.baseline is not None else "-"
            )
            delta = (
                f"{row.ratio - 1.0:+.1%}" if row.ratio is not None else "-"
            )
            lines.append(
                f"{row.series:<28} {row.n_points:>4} {baseline:>12} "
                f"{row.current:>12.1f} {delta:>8}  {row.status}"
            )
        if self.regressions:
            names = ", ".join(r.series for r in self.regressions)
            lines.append(f"REGRESSION in {len(self.regressions)}: {names}")
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def compare(
    entries: Iterable[dict[str, Any]],
    *,
    last_k: int = 5,
    threshold_rel: float = 0.15,
    min_history: int = 5,
) -> BenchComparison:
    """Judge each series' newest point against its recent baseline.

    Baseline = median of up to ``last_k`` points immediately preceding
    the newest one; regression = newest value below ``baseline *
    (1 - threshold_rel)``.  Higher is better for every tracked series
    (throughput rates), so only downward moves gate.  A series whose
    total depth is below ``min_history`` is reported but never fails.
    """
    if not 0.0 < threshold_rel < 1.0:
        raise ValueError(
            f"threshold_rel must be in (0, 1), got {threshold_rel}"
        )
    if last_k < 1:
        raise ValueError(f"last_k must be >= 1, got {last_k}")
    by_series: dict[str, list[dict[str, Any]]] = {}
    for entry in entries:
        by_series.setdefault(str(entry["series"]), []).append(entry)
    rows: list[SeriesTrend] = []
    for series in sorted(by_series):
        points = by_series[series]
        values = [float(p["value"]) for p in points]
        current = values[-1]
        unit = str(points[-1].get("unit", ""))
        window = tuple(values[-(last_k + 1):])
        if len(values) < max(2, min_history):
            rows.append(
                SeriesTrend(
                    series=series,
                    status="insufficient-history",
                    n_points=len(values),
                    current=current,
                    baseline=None,
                    unit=unit,
                    history=window,
                )
            )
            continue
        baseline = statistics.median(values[-(last_k + 1):-1])
        regressed = current < baseline * (1.0 - threshold_rel)
        rows.append(
            SeriesTrend(
                series=series,
                status="regression" if regressed else "ok",
                n_points=len(values),
                current=current,
                baseline=baseline,
                unit=unit,
                history=window,
            )
        )
    return BenchComparison(
        rows=tuple(rows),
        threshold_rel=threshold_rel,
        last_k=last_k,
        min_history=min_history,
    )


def compare_file(
    path: str | Path,
    *,
    last_k: int = 5,
    threshold_rel: float = 0.15,
    min_history: int = 5,
) -> BenchComparison:
    """:func:`load_history` + :func:`compare` in one call (the CLI path)."""
    return compare(
        load_history(path),
        last_k=last_k,
        threshold_rel=threshold_rel,
        min_history=min_history,
    )


def history_depth(entries: Sequence[dict[str, Any]]) -> int:
    """Distinct benchmark runs in a history (by git SHA + timestamp)."""
    return len(
        {(e["git_sha"], e.get("timestamp_s", 0.0)) for e in entries}
    )
