"""Flush-path tracing: contextvar-propagated spans across loop and pool.

One streaming request's life crosses four execution contexts — the
caller's coroutine (``submit``), the event-loop flush callback, a
band-plan flush-pool worker thread (the engine solve), and back to the
loop (resolve).  A :class:`Span` names one timed stage of that path; a
trace is the tree of spans sharing a ``trace_id``, and the serving
layers stitch the tree together across context hops:

* **same task / same thread** — ambient propagation: ``span()`` parents
  itself under the contextvar-held current span, and asyncio tasks copy
  the context at creation, so nesting works unannotated;
* **loop → worker thread** (``run_in_executor`` does *not* carry
  contextvars) — the dispatching layer captures :func:`current` on the
  loop and passes it as the explicit ``parent=`` of the span it opens
  on the worker;
* **queue time** (no code runs while a request is parked) —
  :func:`record_span` emits a retroactive span from the timestamps the
  queue kept.

Finished spans land in a bounded in-memory ring buffer (oldest evicted
first) and, when configured, as JSON lines in a trace file that
``python -m repro.obs summarize`` tabulates.  Tracing is **off by
default**: a disabled tracer returns a shared no-op span handle from a
single attribute check, so instrumented hot paths stay within the
serving benchmarks' noise floor.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType
from typing import IO, Any


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a live span: what children parent under.

    Capture it with :func:`current` before a context hop the contextvar
    cannot cross (``run_in_executor``), then pass it as ``parent=`` on
    the far side.
    """

    trace_id: str
    span_id: str


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One named, timed stage of a trace; mutable until its ``with`` exits."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_wall_s",
        "start_perf_s",
        "duration_s",
        "attrs",
        "thread",
        "error",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall_s = time.time()
        self.start_perf_s = time.perf_counter()
        self.duration_s = 0.0
        self.attrs = attrs
        self.thread = threading.current_thread().name
        self.error: str | None = None

    @property
    def context(self) -> SpanContext:
        """This span's identity, for explicit cross-thread parenting."""
        return SpanContext(self.trace_id, self.span_id)

    def set_attr(self, **attrs: Any) -> None:
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall_s": self.start_wall_s,
            "start_perf_s": self.start_perf_s,
            "duration_s": self.duration_s,
            "thread": self.thread,
            "error": self.error,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    context = None

    def set_attr(self, **attrs: Any) -> None:
        pass


class _NullHandle:
    """No-op context manager: the disabled tracer's entire overhead."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_HANDLE = _NullHandle()

_UNSET: Any = object()  # "parent not given: use the ambient current span"


class _SpanHandle:
    """Context manager running one :class:`Span` from open to finish."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_span", "_token")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: SpanContext | None,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._span: Span | None = None
        self._token: Any = None

    def __enter__(self) -> Span:
        parent = self._parent
        if parent is _UNSET:
            parent = self._tracer.current()
        if parent is None:
            trace_id, parent_id = _new_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(self._name, trace_id, _new_id(), parent_id, self._attrs)
        self._span = span
        self._token = self._tracer._current.set(span.context)
        return span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        span = self._span
        if span is None:
            return
        span.duration_s = time.perf_counter() - span.start_perf_s
        if exc_type is not None:
            span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._current.reset(self._token)
        self._tracer._finish(span.to_dict())


class Tracer:
    """Span factory + bounded sink: ring buffer and optional JSONL file.

    One process-wide instance (:data:`TRACER`) serves every layer; the
    module-level :func:`span` / :func:`current` / :func:`record_span`
    delegate to it.  All sink state is written under one lock; the
    enabled flag is read lock-free on the hot path (a stale read during
    ``configure`` at worst drops or keeps one span).
    """

    def __init__(self, ring_size: int = 4096) -> None:
        self._lock = threading.Lock()
        self._enabled = False  # guarded-by: self._lock
        self._ring: deque[dict[str, Any]] = deque(  # guarded-by: self._lock
            maxlen=ring_size
        )
        self._sink: IO[str] | None = None  # guarded-by: self._lock
        self._sink_path: Path | None = None  # guarded-by: self._lock
        self._max_bytes: int | None = None  # guarded-by: self._lock
        self._current: ContextVar[SpanContext | None] = ContextVar(
            "repro_obs_current_span", default=None
        )

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(
        self,
        *,
        enabled: bool = True,
        ring_size: int | None = None,
        trace_file: str | Path | None = None,
        max_bytes: int | None = None,
    ) -> None:
        """(Re)configure the tracer; each call re-establishes the sink.

        ``trace_file`` opens a fresh JSON-lines sink (truncating);
        ``None`` closes any existing one — so ``configure(enabled=False)``
        is a complete shutdown (tests and example teardowns rely on it).
        ``ring_size`` rebuilds the ring, dropping buffered spans.
        ``max_bytes`` bounds the sink: once a write carries the file
        past it, the file rolls to ``<trace_file>.1`` (replacing any
        previous rollover) and the sink reopens fresh — a long-running
        service keeps at most ~``2 * max_bytes`` of spans on disk, and
        the newest spans are always in the live file.
        """
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        with self._lock:
            old_sink, self._sink = self._sink, None
            self._sink_path = None
            self._max_bytes = max_bytes
            if ring_size is not None:
                self._ring = deque(maxlen=ring_size)
            if trace_file is not None:
                path = Path(trace_file)
                self._sink = path.open("w", encoding="utf-8")
                self._sink_path = path
            self._enabled = enabled
        if old_sink is not None:
            old_sink.close()

    @property
    def enabled(self) -> bool:
        """Whether spans are being recorded."""
        return self._enabled

    @property
    def trace_file(self) -> Path | None:
        """Path of the active JSON-lines sink, if one is configured."""
        return self._sink_path

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        parent: SpanContext | None = _UNSET,
        **attrs: Any,
    ) -> _SpanHandle | _NullHandle:
        """Open a span as a context manager.

        ``parent`` omitted: nest under the ambient current span (or
        start a new trace at the root).  ``parent=ctx``: explicit
        cross-thread parenting.  ``parent=None``: force a new root.
        Disabled tracer: a shared no-op handle.
        """
        if not self._enabled:
            return _NULL_HANDLE
        return _SpanHandle(self, name, parent, dict(attrs))

    def record_span(
        self,
        name: str,
        *,
        start_perf_s: float,
        end_perf_s: float,
        parent: SpanContext | None = None,
        **attrs: Any,
    ) -> None:
        """Emit a retroactive span from timestamps kept elsewhere.

        Covers intervals where no code runs to hold a ``with`` open —
        a request parked on the coalescing queue, a group waiting for
        its pool worker.  The span's ids mint now; its timing is the
        caller's.
        """
        if not self._enabled:
            return
        if parent is None:
            trace_id, parent_id = _new_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        record = {
            "name": name,
            "trace_id": trace_id,
            "span_id": _new_id(),
            "parent_id": parent_id,
            "start_wall_s": time.time() - (end_perf_s - start_perf_s),
            "start_perf_s": start_perf_s,
            "duration_s": end_perf_s - start_perf_s,
            "thread": threading.current_thread().name,
            "error": None,
            "attrs": dict(attrs),
        }
        self._finish(record)

    def current(self) -> SpanContext | None:
        """The ambient span context of this thread/task, if any."""
        return self._current.get()

    # ------------------------------------------------------------------
    # Sink access
    # ------------------------------------------------------------------
    def finished(self) -> list[dict[str, Any]]:
        """Snapshot of the ring buffer, oldest span first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        """Drop the ring buffer's contents (sink file untouched)."""
        with self._lock:
            self._ring.clear()

    def _finish(self, record: dict[str, Any]) -> None:
        line: str | None = None
        with self._lock:
            if not self._enabled:
                return
            self._ring.append(record)
            if self._sink is not None:
                line = json.dumps(record, default=str)
                self._sink.write(line + "\n")
                # Flush per span: span volume is per-flush, not per-link,
                # and a crashed (or just un-closed) process must still
                # leave a summarizable trace behind.
                self._sink.flush()
                if (
                    self._max_bytes is not None
                    and self._sink.tell() >= self._max_bytes
                ):
                    self._sink = self._rotate_sink()

    def _rotate_sink(self) -> IO[str]:
        """Roll the full sink file to ``.1`` and reopen.  Lock held.

        Pure handle swap: closes the full sink, replaces any previous
        rollover, and *returns* the fresh handle — the caller stores it
        back into ``self._sink`` inside its own ``with self._lock:``
        block so the write stays lexically under the guard (REP002).
        """
        assert self._sink is not None and self._sink_path is not None
        self._sink.close()
        path = self._sink_path
        path.replace(path.with_name(path.name + ".1"))
        return path.open("w", encoding="utf-8")


TRACER = Tracer()
"""The process-wide tracer every serving layer opens spans on."""


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return TRACER


def configure(
    *,
    enabled: bool = True,
    ring_size: int | None = None,
    trace_file: str | Path | None = None,
    max_bytes: int | None = None,
) -> None:
    """Configure the process-wide tracer (see :meth:`Tracer.configure`)."""
    TRACER.configure(
        enabled=enabled,
        ring_size=ring_size,
        trace_file=trace_file,
        max_bytes=max_bytes,
    )


def span(
    name: str, parent: SpanContext | None = _UNSET, **attrs: Any
) -> _SpanHandle | _NullHandle:
    """Open a span on the process-wide tracer (see :meth:`Tracer.span`)."""
    return TRACER.span(name, parent, **attrs)


def current() -> SpanContext | None:
    """Ambient span context on the process-wide tracer."""
    return TRACER.current()


def record_span(
    name: str,
    *,
    start_perf_s: float,
    end_perf_s: float,
    parent: SpanContext | None = None,
    **attrs: Any,
) -> None:
    """Retroactive span on the process-wide tracer."""
    TRACER.record_span(
        name,
        start_perf_s=start_perf_s,
        end_perf_s=end_perf_s,
        parent=parent,
        **attrs,
    )
